// Tests for the is_live heuristic (§4.4.1).
#include <gtest/gtest.h>

#include "src/sim/liveness.h"

namespace snowboard {
namespace {

Access MakeRead(GuestAddr addr, uint64_t value) {
  Access a;
  a.type = AccessType::kRead;
  a.addr = addr;
  a.len = 4;
  a.value = value;
  return a;
}

Access MakeWrite(GuestAddr addr, uint64_t value) {
  Access a = MakeRead(addr, value);
  a.type = AccessType::kWrite;
  return a;
}

TEST(LivenessTest, FreshMonitorIsLive) {
  LivenessMonitor monitor(2);
  EXPECT_TRUE(monitor.IsLive(0));
  EXPECT_TRUE(monitor.IsLive(1));
}

TEST(LivenessTest, StuckSameValueReadsGoNotLive) {
  LivenessMonitor::Options options;
  options.stuck_read_threshold = 8;
  LivenessMonitor monitor(1, options);
  for (int i = 0; i < 10; i++) {
    monitor.OnAccess(0, MakeRead(0x2000, 1));  // Spinning on a held lock word.
  }
  EXPECT_FALSE(monitor.IsLive(0));
}

TEST(LivenessTest, ValueChangeIsProgress) {
  LivenessMonitor::Options options;
  options.stuck_read_threshold = 8;
  LivenessMonitor monitor(1, options);
  for (int i = 0; i < 20; i++) {
    monitor.OnAccess(0, MakeRead(0x2000, static_cast<uint64_t>(i)));  // Counter moving.
  }
  EXPECT_TRUE(monitor.IsLive(0));
}

TEST(LivenessTest, AddressChangeIsProgress) {
  LivenessMonitor::Options options;
  options.stuck_read_threshold = 8;
  LivenessMonitor monitor(1, options);
  for (int i = 0; i < 20; i++) {
    monitor.OnAccess(0, MakeRead(0x2000 + static_cast<GuestAddr>(4 * (i % 2)), 1));
  }
  EXPECT_TRUE(monitor.IsLive(0));
}

TEST(LivenessTest, WriteIsProgress) {
  LivenessMonitor::Options options;
  options.stuck_read_threshold = 8;
  LivenessMonitor monitor(1, options);
  for (int i = 0; i < 7; i++) {
    monitor.OnAccess(0, MakeRead(0x2000, 1));
  }
  monitor.OnAccess(0, MakeWrite(0x2000, 1));
  for (int i = 0; i < 7; i++) {
    monitor.OnAccess(0, MakeRead(0x2000, 1));
  }
  EXPECT_TRUE(monitor.IsLive(0));
}

TEST(LivenessTest, PauseStreakGoesNotLive) {
  LivenessMonitor::Options options;
  options.pause_threshold = 4;
  LivenessMonitor monitor(1, options);
  for (int i = 0; i < 5; i++) {
    monitor.OnPause(0);
  }
  EXPECT_FALSE(monitor.IsLive(0));
}

TEST(LivenessTest, StuckReadDoesNotClearPauseStreak) {
  LivenessMonitor::Options options;
  options.pause_threshold = 6;
  options.stuck_read_threshold = 100;
  LivenessMonitor monitor(1, options);
  // Cas+Pause spin: pause, read-same-value, pause, ... streak must keep growing.
  monitor.OnAccess(0, MakeRead(0x2000, 1));
  for (int i = 0; i < 7; i++) {
    monitor.OnPause(0);
    monitor.OnAccess(0, MakeRead(0x2000, 1));
  }
  EXPECT_FALSE(monitor.IsLive(0));
}

TEST(LivenessTest, ProgressClearsPauseStreak) {
  LivenessMonitor::Options options;
  options.pause_threshold = 6;
  LivenessMonitor monitor(1, options);
  for (int i = 0; i < 5; i++) {
    monitor.OnPause(0);
  }
  monitor.OnAccess(0, MakeWrite(0x2000, 1));  // Lock acquired: progress.
  for (int i = 0; i < 5; i++) {
    monitor.OnPause(0);
  }
  EXPECT_TRUE(monitor.IsLive(0));
}

TEST(LivenessTest, OnProgressResetsEverything) {
  LivenessMonitor::Options options;
  options.stuck_read_threshold = 4;
  LivenessMonitor monitor(1, options);
  for (int i = 0; i < 6; i++) {
    monitor.OnAccess(0, MakeRead(0x2000, 1));
  }
  EXPECT_FALSE(monitor.IsLive(0));
  monitor.OnProgress(0);
  EXPECT_TRUE(monitor.IsLive(0));
}

TEST(LivenessTest, VcpusTrackedIndependently) {
  LivenessMonitor::Options options;
  options.stuck_read_threshold = 4;
  LivenessMonitor monitor(2, options);
  for (int i = 0; i < 6; i++) {
    monitor.OnAccess(0, MakeRead(0x2000, 1));
  }
  EXPECT_FALSE(monitor.IsLive(0));
  EXPECT_TRUE(monitor.IsLive(1));
}

TEST(LivenessTest, ResetRestoresLiveness) {
  LivenessMonitor::Options options;
  options.stuck_read_threshold = 4;
  LivenessMonitor monitor(1, options);
  for (int i = 0; i < 6; i++) {
    monitor.OnAccess(0, MakeRead(0x2000, 1));
  }
  monitor.Reset();
  EXPECT_TRUE(monitor.IsLive(0));
}

}  // namespace
}  // namespace snowboard
