// Edge cases of the pipeline and its options: degenerate budgets, tiny corpora, PMC
// identification caps, hot-cell pruning, and matcher bounds.
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/snowboard/pipeline.h"

namespace snowboard {
namespace {

// ResolvedWorkers is the single interpretation of num_workers shared by every stage:
// non-positive values (unset / nonsense from a caller) resolve to one worker, explicit
// counts pass through.
TEST(PipelineEdgeTest, ResolvedWorkersClampsNonPositiveCounts) {
  PipelineOptions options;
  EXPECT_EQ(options.ResolvedWorkers(), 1);  // Default num_workers = 1.
  options.num_workers = 0;
  EXPECT_EQ(options.ResolvedWorkers(), 1);
  options.num_workers = -3;
  EXPECT_EQ(options.ResolvedWorkers(), 1);
  options.num_workers = 8;
  EXPECT_EQ(options.ResolvedWorkers(), 8);
}

// A zero or negative worker count must behave exactly like one worker, end to end.
TEST(PipelineEdgeTest, NonPositiveWorkerCountRunsLikeOneWorker) {
  PipelineOptions base;
  base.corpus.max_iterations = 10;
  base.corpus.target_size = 8;
  base.max_concurrent_tests = 4;
  base.explorer.num_trials = 2;
  base.num_workers = 1;
  PipelineResult golden = RunSnowboardPipeline(base);
  for (int workers : {0, -1}) {
    SCOPED_TRACE(testing::Message() << "num_workers=" << workers);
    PipelineOptions options = base;
    options.num_workers = workers;
    PipelineResult result = RunSnowboardPipeline(options);
    EXPECT_EQ(result.tests_executed, golden.tests_executed);
    EXPECT_EQ(result.total_trials, golden.total_trials);
    EXPECT_EQ(result.pmc_count, golden.pmc_count);
  }
}

TEST(PipelineEdgeTest, ZeroBudgetExecutesNothing) {
  PipelineOptions options;
  options.corpus.max_iterations = 10;
  options.corpus.target_size = 10;
  options.max_concurrent_tests = 0;
  PipelineResult result = RunSnowboardPipeline(options);
  EXPECT_EQ(result.tests_generated, 0u);
  EXPECT_EQ(result.tests_executed, 0u);
  EXPECT_EQ(result.findings.total_findings(), 0u);
  EXPECT_GT(result.pmc_count, 0u);  // Identification still ran.
}

TEST(PipelineEdgeTest, SingleTestCorpusStillWorks) {
  // One sequential test: all PMCs are self-pairs; duplicate-style concurrent tests result.
  KernelVm vm;
  std::vector<Program> corpus = {SeedPrograms()[1]};  // l2tp reader (connect+sendmsg).
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  EXPECT_GT(pmcs.size(), 0u);
  for (const Pmc& pmc : pmcs) {
    for (const PmcTestPair& pair : pmc.pairs) {
      EXPECT_EQ(pair.write_test, 0);
      EXPECT_EQ(pair.read_test, 0);
    }
  }
  std::vector<PmcCluster> clusters = ClusterPmcs(pmcs, Strategy::kSInsPair);
  SelectOptions select;
  std::vector<ConcurrentTest> tests = SelectConcurrentTests(pmcs, clusters, corpus, select);
  ASSERT_GT(tests.size(), 0u);
  EXPECT_EQ(tests[0].write_test, tests[0].read_test);
}

TEST(PipelineEdgeTest, MaxPmcCapStopsIdentification) {
  KernelVm vm;
  std::vector<Program> corpus = {SeedPrograms()[0], SeedPrograms()[1]};
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  PmcIdentifyOptions options;
  options.max_pmcs = 5;
  EXPECT_EQ(IdentifyPmcs(profiles, options).size(), 5u);
}

TEST(PipelineEdgeTest, HotCellPruningReducesPmcs) {
  KernelVm vm;
  std::vector<Program> corpus = CorpusPrograms(BuildCorpus(vm, CorpusOptions{}));
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> unpruned = IdentifyPmcs(profiles);
  PmcIdentifyOptions pruned_options;
  pruned_options.max_keys_per_address = 2;  // Drop hot cells (counters, lock words).
  std::vector<Pmc> pruned = IdentifyPmcs(profiles, pruned_options);
  EXPECT_LT(pruned.size(), unpruned.size());
  EXPECT_GT(pruned.size(), 0u);
}

TEST(PipelineEdgeTest, MatcherIndexBoundRespected) {
  std::vector<Pmc> pmcs;
  for (uint32_t i = 0; i < 100; i++) {
    Pmc pmc;
    pmc.key.write = PmcSide{0x1000 + 4 * i, 4, 100 + i, 1};
    pmc.key.read = PmcSide{0x1000 + 4 * i, 4, 200 + i, 2};
    pmcs.push_back(pmc);
  }
  PmcMatcher matcher(&pmcs, /*max_indexed=*/10);
  // Write features beyond the indexed prefix are not findable.
  uint64_t indexed = AccessFeatureHash(AccessType::kWrite, 0x1000, 4, 100, 1);
  uint64_t unindexed = AccessFeatureHash(AccessType::kWrite, 0x1000 + 4 * 50, 4, 150, 1);
  EXPECT_NE(matcher.CandidatesForWrite(indexed), nullptr);
  EXPECT_EQ(matcher.CandidatesForWrite(unindexed), nullptr);
}

TEST(PipelineEdgeTest, ExplorerZeroTrials) {
  KernelVm vm;
  ConcurrentTest test;
  test.writer = SeedPrograms()[0];
  test.reader = SeedPrograms()[1];
  ExplorerOptions options;
  options.num_trials = 0;
  ExploreOutcome outcome = ExploreConcurrentTest(vm, test, nullptr, options);
  EXPECT_EQ(outcome.trials_run, 0);
  EXPECT_FALSE(outcome.bug_found);
}

TEST(PipelineEdgeTest, BudgetLargerThanClusterCountIsClamped) {
  PipelineOptions options;
  options.corpus.max_iterations = 20;
  options.corpus.target_size = 20;
  options.max_concurrent_tests = 1'000'000;
  options.explorer.num_trials = 2;
  options.strategy = Strategy::kSMem;
  PipelineResult result = RunSnowboardPipeline(options);
  EXPECT_EQ(result.tests_generated, result.cluster_count);  // One exemplar per cluster.
  EXPECT_EQ(result.tests_executed, result.tests_generated);
}

TEST(PipelineEdgeTest, FindingsSurviveWorkerCountChange) {
  // The set of found issue ids must not depend on worker parallelism (order may).
  PipelineOptions options;
  options.corpus.max_iterations = 30;
  options.corpus.target_size = 30;
  options.max_concurrent_tests = 25;
  options.explorer.num_trials = 6;
  options.strategy = Strategy::kSIns;

  options.num_workers = 1;
  PipelineResult one = RunSnowboardPipeline(options);
  options.num_workers = 8;
  PipelineResult eight = RunSnowboardPipeline(options);
  std::set<int> ids_one;
  std::set<int> ids_eight;
  for (const auto& [id, finding] : one.findings.first_findings()) {
    ids_one.insert(id);
  }
  for (const auto& [id, finding] : eight.findings.first_findings()) {
    ids_eight.insert(id);
  }
  EXPECT_EQ(ids_one, ids_eight);
}

}  // namespace
}  // namespace snowboard
