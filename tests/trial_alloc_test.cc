// Zero-allocation guarantee for the steady-state trial hot loop.
//
// This binary replaces the global operator new/delete with counting forwarders (which is
// why it is built as its own test executable, separate from sb_tests) and asserts that the
// distilled Algorithm 2 trial loop — restore snapshot, run both guest programs under the
// PMC scheduler, run the detectors — performs ZERO heap allocations once warmed up.
//
// Warm-up cycles the exact seed set that is later measured: identical seeds produce
// identical traces, so every recycled buffer (trace storage, detector scratch, engine
// per-run state, scheduler flags) reaches its high-water capacity during warm-up and the
// measured cycle has nothing left to grow.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "src/fuzz/generator.h"
#include "src/snowboard/pipeline.h"
#include "src/util/counters.h"
#include "src/util/trace.h"

namespace {

std::atomic<uint64_t> g_allocations{0};

uint64_t AllocationCount() { return g_allocations.load(std::memory_order_relaxed); }

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace snowboard {
namespace {

TEST(TrialAllocTest, SteadyStateTrialLoopIsAllocationFree) {
  KernelVm vm;
  const std::vector<Program> seeds = SeedPrograms();

  // Pick the first seed program whose duplicate-pair trials run clean: console hits are the
  // one detector outcome that inherently allocates (fresh std::string per hit), so the
  // steady-state guarantee is stated over clean trials — the overwhelmingly common case.
  constexpr uint64_t kTrialSeeds = 8;
  Engine::RunOptions opts;
  opts.max_instructions = 400'000;
  Engine::RunResult result;
  RaceDetector detector;
  DetectorResult detectors;
  PmcScheduler scheduler;

  bool found_clean = false;
  std::vector<Engine::GuestFn> fns;
  for (size_t i = 0; i < seeds.size() && !found_clean; i++) {
    SequentialProfile profile = ProfileTest(vm, seeds[i], 0);
    if (!profile.ok) {
      continue;
    }
    std::vector<Pmc> pmcs = IdentifyPmcs({profile});
    if (pmcs.empty()) {
      continue;
    }
    scheduler.ResetForTest(pmcs[0].key);
    fns.clear();
    fns.push_back(MakeProgramRunner(vm.globals(), seeds[i], 0));
    fns.push_back(MakeProgramRunner(vm.globals(), seeds[i], 1));
    opts.scheduler = &scheduler;

    found_clean = true;
    for (uint64_t s = 0; s < kTrialSeeds && found_clean; s++) {
      scheduler.SeedTrial(2021 + s);
      vm.RestoreSnapshot();
      vm.engine().RunInto(fns, opts, &result);
      RunDetectors(result, &detector, &detectors);
      if (!detectors.console_hits.empty() || result.panicked || result.hang) {
        found_clean = false;
      }
    }
  }
  ASSERT_TRUE(found_clean) << "no seed program runs clean as a duplicate pair";

  auto run_cycle = [&]() {
    for (uint64_t s = 0; s < kTrialSeeds; s++) {
      scheduler.SeedTrial(2021 + s);
      vm.RestoreSnapshot();
      vm.engine().RunInto(fns, opts, &result);
      RunDetectors(result, &detector, &detectors);
    }
  };

  // Warm-up: let every recycled buffer reach its high-water capacity for this seed set.
  for (int i = 0; i < 3; i++) {
    run_cycle();
  }

  uint64_t before = AllocationCount();
  run_cycle();
  uint64_t after = AllocationCount();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in a steady-state trial cycle";

  // Tracing runtime-ENABLED must not reintroduce allocations either: the per-thread
  // buffer is allocated once at registration (inside the warm-up cycle below) and every
  // span/counter after that is a fixed-size in-place push. This is the cost-model claim in
  // util/trace.h, proven against the same loop the zero-alloc guarantee covers.
  Tracer::Global().Start(/*per_thread_capacity=*/1 << 16);
  run_cycle();  // Warm-up: registers this thread's trace buffer.
  before = AllocationCount();
  run_cycle();
  after = AllocationCount();
  Tracer::Global().Stop();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in a traced steady-state trial cycle";

  // The per-worker counter shard the pool installs around every job must not cost heap
  // either: CounterShardScope is a stack object over a plain counter block, and flushing it
  // is a loop of atomic adds. This is the aggregation path the multi-core explore loop runs
  // once per trial batch — prove it rides along allocation-free.
  {
    CounterShardScope shard;
    run_cycle();  // Warm-up inside the scope (nothing shard-related should grow anyway).
    before = AllocationCount();
    run_cycle();
    FlushCounterShard();
    after = AllocationCount();
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " heap allocations in a sharded-counter trial cycle";
  }
}

}  // namespace
}  // namespace snowboard
