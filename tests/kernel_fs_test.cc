// Tests for sbfs, configfs, and the VFS layer — including deterministic reproductions of
// the seeded issues #2 (swap-boot checksum), #3 (extent magic), #4 (writeback TOCTOU), and
// #11 (configfs lookup).
#include <gtest/gtest.h>

#include "src/kernel/fs/configfs.h"
#include "src/kernel/fs/sbfs.h"
#include "src/kernel/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"

namespace snowboard {
namespace {

class FsTest : public ::testing::Test {
 protected:
  void Enter(Ctx& ctx, int task = 0) { TaskEnter(ctx, vm_.globals().tasks[task]); }
  KernelVm vm_;
};

TEST_F(FsTest, SequentialReadWriteConsistent) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr inode = SbfsInodeAddr(ctx, g.sbfs, 1);
    EXPECT_GE(SbfsRead(ctx, g, inode, 16), 0);
    EXPECT_EQ(SbfsWrite(ctx, g, inode, 100, 0x42), 100);
    EXPECT_GE(SbfsRead(ctx, g, inode, 16), 0);  // Checksum still valid.
    EXPECT_EQ(ctx.Load32(inode + kInodeSize, SB_SITE()), 100u);
  });
  EXPECT_FALSE(vm_.engine().console().Contains("EXT4-fs error"));
}

TEST_F(FsTest, TruncateThenWriteReallocatesBlock) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr inode = SbfsInodeAddr(ctx, g.sbfs, 1);
    EXPECT_EQ(SbfsFtruncate(ctx, g, inode, 0), 0);
    EXPECT_EQ(ctx.Load32(inode + kInodeBlock0, SB_SITE()), kSbfsInvalidBlock);
    EXPECT_EQ(SbfsWrite(ctx, g, inode, 10, 1), 10);
    EXPECT_NE(ctx.Load32(inode + kInodeBlock0, SB_SITE()), kSbfsInvalidBlock);
  });
}

TEST_F(FsTest, SwapBootLoaderSequentialIsClean) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr inode = SbfsInodeAddr(ctx, g.sbfs, 1);
    SbfsWrite(ctx, g, inode, 64, 0x99);
    EXPECT_EQ(SbfsSwapInodeBootLoader(ctx, g, inode), 0);
    EXPECT_GE(SbfsRead(ctx, g, inode, 8), 0);
    GuestAddr boot = SbfsInodeAddr(ctx, g.sbfs, 0);
    EXPECT_EQ(ctx.Load32(boot + kInodeSize, SB_SITE()), 64u);  // Swapped in.
  });
  EXPECT_FALSE(vm_.engine().console().Contains("checksum invalid"));
}

// Switches vCPU 0 away right after SbfsSwapInodeBootLoader's Nth field access.
class SwapWindowScheduler : public Scheduler {
 public:
  explicit SwapWindowScheduler(int switch_after) : remaining_(switch_after) {}
  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    if (vcpu == 0 && remaining_ > 0) {
      return --remaining_ == 0;
    }
    return false;
  }

 private:
  int remaining_;
};

TEST_F(FsTest, Issue2SwapChecksumViolation) {
  const KernelGlobals& g = vm_.globals();
  // Writer swaps /f0 <-> boot inode; the other thread writes /f0 mid-swap.
  bool reproduced = false;
  for (int cut = 4; cut < 40 && !reproduced; cut++) {
    vm_.RestoreSnapshot();
    SwapWindowScheduler scheduler(cut);
    Engine::RunOptions opts;
    opts.scheduler = &scheduler;
    Engine::RunResult result = vm_.engine().Run(
        {[&](Ctx& ctx) {
           Enter(ctx, 0);
           GuestAddr inode = SbfsInodeAddr(ctx, g.sbfs, 1);
           SbfsSwapInodeBootLoader(ctx, g, inode);
         },
         [&](Ctx& ctx) {
           Enter(ctx, 1);
           GuestAddr inode = SbfsInodeAddr(ctx, g.sbfs, 1);
           SbfsWrite(ctx, g, inode, 48, 0x7);
         }},
        opts);
    for (const std::string& line : result.console) {
      if (line.find("sbfs_swap_inode_boot_loader: checksum invalid") != std::string::npos) {
        reproduced = true;
      }
    }
  }
  EXPECT_TRUE(reproduced);
}

// Switches vCPU 0 away right after it zeroes the extent magic.
class MagicWindowScheduler : public Scheduler {
 public:
  explicit MagicWindowScheduler(GuestAddr magic_addr) : magic_addr_(magic_addr) {}
  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    return vcpu == 0 && access.type == AccessType::kWrite && access.addr == magic_addr_ &&
           access.value == 0;
  }

 private:
  GuestAddr magic_addr_;
};

TEST_F(FsTest, Issue3ExtentMagicViolation) {
  const KernelGlobals& g = vm_.globals();
  GuestAddr inode = 0;
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    inode = SbfsInodeAddr(ctx, g.sbfs, 1);
  });
  MagicWindowScheduler scheduler(inode + kInodeExtMagic);
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  vm_.RestoreSnapshot();
  Engine::RunResult result = vm_.engine().Run(
      {[&](Ctx& ctx) {
         Enter(ctx, 0);
         // Write crossing a 1024-block boundary triggers the extent rebuild.
         SbfsWrite(ctx, g, inode, 2000, 0x11);
       },
       [&](Ctx& ctx) {
         Enter(ctx, 1);
         SbfsRead(ctx, g, inode, 8);  // Lockless magic check hits the zero window.
       }},
      opts);
  bool saw_magic_error = false;
  for (const std::string& line : result.console) {
    saw_magic_error = saw_magic_error || line.find("invalid magic") != std::string::npos;
  }
  EXPECT_TRUE(saw_magic_error);
}

// Switches vCPU 0 away right after it releases the inode lock in SbfsWrite (before the
// unlocked writeback re-read of the block number).
class WritebackWindowScheduler : public Scheduler {
 public:
  explicit WritebackWindowScheduler(GuestAddr lock_addr) : lock_addr_(lock_addr) {}
  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    if (vcpu == 0 && !fired_ && access.type == AccessType::kWrite &&
        access.addr == lock_addr_ && access.value == 0) {
      fired_ = true;  // SpinUnlock's zero store: the lock is free, writeback comes next.
      return true;
    }
    return false;
  }

 private:
  GuestAddr lock_addr_;
  bool fired_ = false;
};

TEST_F(FsTest, Issue4WritebackIoError) {
  const KernelGlobals& g = vm_.globals();
  GuestAddr inode = 0;
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    inode = SbfsInodeAddr(ctx, g.sbfs, 1);
  });
  WritebackWindowScheduler scheduler(inode + kInodeLock);
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  vm_.RestoreSnapshot();
  Engine::RunResult result = vm_.engine().Run(
      {[&](Ctx& ctx) {
         Enter(ctx, 0);
         SbfsWrite(ctx, g, inode, 32, 0x5);  // Writeback re-reads block0 unlocked.
       },
       [&](Ctx& ctx) {
         Enter(ctx, 1);
         SbfsFtruncate(ctx, g, inode, 0);  // Invalidates block0 in the window.
       }},
      opts);
  bool saw_io_error = false;
  for (const std::string& line : result.console) {
    saw_io_error =
        saw_io_error || line.find("blk_update_request: I/O error") != std::string::npos;
  }
  EXPECT_TRUE(saw_io_error);
}

TEST_F(FsTest, ConfigfsSequentialLifecycle) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    EXPECT_NE(ConfigfsLookup(ctx, g, 1), kGuestNull);  // Boot-created /cfg/a.
    EXPECT_NE(ConfigfsLookup(ctx, g, 2), kGuestNull);
    EXPECT_EQ(ConfigfsLookup(ctx, g, 3), kGuestNull);
    EXPECT_EQ(ConfigfsMkdir(ctx, g, 3), 0);
    EXPECT_NE(ConfigfsLookup(ctx, g, 3), kGuestNull);
    EXPECT_EQ(ConfigfsMkdir(ctx, g, 3), kEEXIST);
    EXPECT_EQ(ConfigfsRmdir(ctx, g, 3), 0);
    EXPECT_EQ(ConfigfsLookup(ctx, g, 3), kGuestNull);
    EXPECT_EQ(ConfigfsRmdir(ctx, g, 3), kENOENT);
  });
}

// Switches the lookup away right after it reads the matching dirent's name, before it loads
// the inode pointer — the issue #11 window.
class LookupWindowScheduler : public Scheduler {
 public:
  explicit LookupWindowScheduler(uint32_t name_id) : name_id_(name_id) {}
  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    if (vcpu == 0 && !fired_ && access.type == AccessType::kRead &&
        access.value == name_id_ && access.len == 4) {
      fired_ = true;
      return true;
    }
    return false;
  }

 private:
  uint32_t name_id_;
  bool fired_ = false;
};

TEST_F(FsTest, Issue11ConfigfsLookupNullDeref) {
  const KernelGlobals& g = vm_.globals();
  LookupWindowScheduler scheduler(/*name_id=*/1);
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  vm_.RestoreSnapshot();
  Engine::RunResult result = vm_.engine().Run(
      {[&](Ctx& ctx) {
         Enter(ctx, 0);
         ConfigfsLookup(ctx, g, 1);  // open("/cfg/a").
       },
       [&](Ctx& ctx) {
         Enter(ctx, 1);
         ConfigfsRmdir(ctx, g, 1);  // rmdir("/cfg/a") poisons the dirent.
       }},
      opts);
  EXPECT_TRUE(result.panicked);
  EXPECT_NE(result.panic_message.find("NULL pointer dereference"), std::string::npos);
  EXPECT_NE(result.panic_message.find("ConfigfsLookup"), std::string::npos);
}

TEST_F(FsTest, VfsOpenReadWriteCloseAcrossKinds) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t fd_file = VfsOpen(ctx, g, 0, 0);   // /f0
    int64_t fd_bdev = VfsOpen(ctx, g, 3, 0);   // /dev/sbd0
    int64_t fd_cfg = VfsOpen(ctx, g, 4, 0);    // /cfg/a
    int64_t fd_tty = VfsOpen(ctx, g, 6, 0);    // /dev/ttyS0
    int64_t fd_snd = VfsOpen(ctx, g, 7, 0);    // /dev/snd
    EXPECT_GE(fd_file, 0);
    EXPECT_GE(fd_bdev, 0);
    EXPECT_GE(fd_cfg, 0);
    EXPECT_GE(fd_tty, 0);
    EXPECT_GE(fd_snd, 0);
    EXPECT_GE(VfsWrite(ctx, g, static_cast<int>(fd_file), 8, 0x1), 0);
    EXPECT_GE(VfsRead(ctx, g, static_cast<int>(fd_file), 8), 0);
    EXPECT_GE(VfsRead(ctx, g, static_cast<int>(fd_bdev), 1), 0);
    EXPECT_GE(VfsRead(ctx, g, static_cast<int>(fd_tty), 1), 0);
    EXPECT_GE(VfsRead(ctx, g, static_cast<int>(fd_snd), 1), 0);
    for (int64_t fd : {fd_file, fd_bdev, fd_cfg, fd_tty, fd_snd}) {
      EXPECT_EQ(VfsClose(ctx, g, static_cast<int>(fd)), 0);
    }
    EXPECT_EQ(VfsClose(ctx, g, 99), kEBADF);
    EXPECT_EQ(VfsOpen(ctx, g, 999, 0), kENOENT);
  });
}

TEST_F(FsTest, VfsRenameSwapsData) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr i0 = SbfsInodeAddr(ctx, g.sbfs, 1);
    GuestAddr i1 = SbfsInodeAddr(ctx, g.sbfs, 2);
    uint32_t d0 = ctx.Load32(i0 + kInodeData, SB_SITE());
    uint32_t d1 = ctx.Load32(i1 + kInodeData, SB_SITE());
    EXPECT_EQ(VfsRename(ctx, g, 0, 1), 0);
    EXPECT_EQ(ctx.Load32(i0 + kInodeData, SB_SITE()), d1);
    EXPECT_EQ(ctx.Load32(i1 + kInodeData, SB_SITE()), d0);
    EXPECT_EQ(VfsRename(ctx, g, 0, 3), kEINVAL);  // Block dev is not renameable.
  });
}

}  // namespace
}  // namespace snowboard
