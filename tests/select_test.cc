// Tests for PMC selection/prioritization (§4.3/§4.4) and the baseline pairing generators.
#include <gtest/gtest.h>

#include "src/snowboard/select.h"

namespace snowboard {
namespace {

Pmc MakePmc(SiteId ws, SiteId rs, std::vector<PmcTestPair> pairs) {
  Pmc pmc;
  pmc.key.write = PmcSide{0x100, 4, ws, 1};
  pmc.key.read = PmcSide{0x100, 4, rs, 2};
  pmc.pairs = std::move(pairs);
  pmc.total_pairs = pmc.pairs.size();
  return pmc;
}

std::vector<Program> TinyCorpus(int n) {
  std::vector<Program> corpus;
  for (int i = 0; i < n; i++) {
    Program p;
    Call call;
    call.nr = kSysMsgget;
    call.args[0] = Arg::Const(i);
    p.calls.push_back(call);
    corpus.push_back(p);
  }
  return corpus;
}

TEST(OrderClustersTest, UncommonFirst) {
  std::vector<PmcCluster> clusters = {
      PmcCluster{10, {0, 1, 2}},
      PmcCluster{20, {3}},
      PmcCluster{30, {4, 5}},
  };
  Rng rng(1);
  std::vector<size_t> order = OrderClusters(clusters, /*randomize=*/false, rng);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // Size 1.
  EXPECT_EQ(order[1], 2u);  // Size 2.
  EXPECT_EQ(order[2], 0u);  // Size 3.
}

TEST(OrderClustersTest, DeterministicTieBreakByKey) {
  std::vector<PmcCluster> clusters = {PmcCluster{50, {0}}, PmcCluster{40, {1}}};
  Rng rng(1);
  std::vector<size_t> order = OrderClusters(clusters, false, rng);
  EXPECT_EQ(order[0], 1u);  // Key 40 < 50.
}

TEST(OrderClustersTest, RandomizedOrderIsSeededShuffle) {
  std::vector<PmcCluster> clusters;
  for (uint64_t i = 0; i < 20; i++) {
    clusters.push_back(PmcCluster{i, {static_cast<uint32_t>(i)}});
  }
  Rng rng_a(7);
  Rng rng_b(7);
  std::vector<size_t> a = OrderClusters(clusters, true, rng_a);
  std::vector<size_t> b = OrderClusters(clusters, true, rng_b);
  EXPECT_EQ(a, b);  // Same seed, same shuffle.
  Rng rng_c(8);
  std::vector<size_t> c = OrderClusters(clusters, true, rng_c);
  EXPECT_NE(a, c);  // Different seed, (almost surely) different order.
  // Still a permutation.
  std::vector<size_t> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); i++) {
    EXPECT_EQ(sorted[i], i);
  }
}

TEST(SelectTest, OneExemplarPerCluster) {
  std::vector<Pmc> pmcs = {MakePmc(1, 2, {{0, 1}}), MakePmc(1, 3, {{1, 2}}),
                           MakePmc(4, 5, {{2, 0}})};
  std::vector<PmcCluster> clusters = {PmcCluster{100, {0, 1}}, PmcCluster{200, {2}}};
  SelectOptions options;
  std::vector<ConcurrentTest> tests =
      SelectConcurrentTests(pmcs, clusters, TinyCorpus(3), options);
  EXPECT_EQ(tests.size(), 2u);
  for (const ConcurrentTest& test : tests) {
    EXPECT_GE(test.write_test, 0);
    EXPECT_LT(test.write_test, 3);
    EXPECT_GE(test.read_test, 0);
    EXPECT_LT(test.read_test, 3);
  }
  // Uncommon first: the singleton cluster's exemplar comes first.
  EXPECT_EQ(tests[0].cluster_size, 1u);
  EXPECT_EQ(tests[1].cluster_size, 2u);
}

TEST(SelectTest, MaxTestsBudgetRespected) {
  std::vector<Pmc> pmcs;
  std::vector<PmcCluster> clusters;
  for (uint32_t i = 0; i < 50; i++) {
    pmcs.push_back(MakePmc(i, i + 100, {{0, 1}}));
    clusters.push_back(PmcCluster{i, {i}});
  }
  SelectOptions options;
  options.max_tests = 7;
  EXPECT_EQ(SelectConcurrentTests(pmcs, clusters, TinyCorpus(2), options).size(), 7u);
}

TEST(SelectTest, DeterministicForSeed) {
  std::vector<Pmc> pmcs;
  std::vector<PmcCluster> clusters;
  for (uint32_t i = 0; i < 10; i++) {
    pmcs.push_back(MakePmc(i, i + 100, {{0, 1}, {1, 0}, {2, 2}}));
    clusters.push_back(PmcCluster{i, {i}});
  }
  SelectOptions options;
  options.seed = 77;
  std::vector<ConcurrentTest> a = SelectConcurrentTests(pmcs, clusters, TinyCorpus(3), options);
  std::vector<ConcurrentTest> b = SelectConcurrentTests(pmcs, clusters, TinyCorpus(3), options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i].write_test, b[i].write_test);
    EXPECT_EQ(a[i].read_test, b[i].read_test);
    EXPECT_EQ(a[i].hint.Hash(), b[i].hint.Hash());
  }
}

TEST(SelectTest, HintComesFromExemplarPmc) {
  std::vector<Pmc> pmcs = {MakePmc(11, 22, {{0, 1}})};
  std::vector<PmcCluster> clusters = {PmcCluster{1, {0}}};
  SelectOptions options;
  std::vector<ConcurrentTest> tests =
      SelectConcurrentTests(pmcs, clusters, TinyCorpus(2), options);
  ASSERT_EQ(tests.size(), 1u);
  EXPECT_EQ(tests[0].hint.write.site, 11u);
  EXPECT_EQ(tests[0].hint.read.site, 22u);
}

TEST(BaselinesTest, RandomPairsCoverCorpus) {
  std::vector<ConcurrentTest> tests = GenerateRandomPairs(TinyCorpus(10), 100, 3);
  EXPECT_EQ(tests.size(), 100u);
  bool saw_distinct = false;
  for (const ConcurrentTest& test : tests) {
    saw_distinct = saw_distinct || test.write_test != test.read_test;
  }
  EXPECT_TRUE(saw_distinct);
}

TEST(BaselinesTest, DuplicatePairsAreIdentical) {
  std::vector<ConcurrentTest> tests = GenerateDuplicatePairs(TinyCorpus(10), 50, 3);
  EXPECT_EQ(tests.size(), 50u);
  for (const ConcurrentTest& test : tests) {
    EXPECT_EQ(test.write_test, test.read_test);
    EXPECT_EQ(test.writer.Hash(), test.reader.Hash());
  }
}

}  // namespace
}  // namespace snowboard
