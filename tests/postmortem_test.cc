// Tests for the post-mortem analysis tools (§4.4.1): race-vs-PMC verification, race
// diagnosis rendering, observed-communication extraction, schedule formatting.
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/sim/site.h"
#include "src/snowboard/explorer.h"
#include "src/snowboard/pipeline.h"
#include "src/snowboard/postmortem.h"

namespace snowboard {
namespace {

Pmc MakePmc(GuestAddr wa, SiteId ws, GuestAddr ra, SiteId rs) {
  Pmc pmc;
  pmc.key.write = PmcSide{wa, 4, ws, 1};
  pmc.key.read = PmcSide{ra, 4, rs, 2};
  return pmc;
}

Event AccessEvent(VcpuId vcpu, AccessType type, GuestAddr addr, SiteId site, uint64_t value,
                  uint8_t len = 4) {
  Event e;
  e.kind = EventKind::kAccess;
  e.vcpu = vcpu;
  e.access.type = type;
  e.access.vcpu = vcpu;
  e.access.addr = addr;
  e.access.len = len;
  e.access.site = site;
  e.access.value = value;
  return e;
}

TEST(VerifyRaceTest, PredictedWithExactRange) {
  std::vector<Pmc> pmcs = {MakePmc(0x2000, 11, 0x2000, 22)};
  RaceReport race;
  race.write_site = 11;
  race.other_site = 22;
  race.addr = 0x2002;  // Inside the PMC ranges.
  RacePmcVerdict verdict = VerifyRaceAgainstPmcs(race, pmcs);
  EXPECT_TRUE(verdict.predicted);
  EXPECT_TRUE(verdict.exact_range);
  EXPECT_EQ(verdict.pmc_index, 0u);
}

TEST(VerifyRaceTest, PredictedBySitesOnly) {
  // The PMC pairs the same instructions but over a different object instance (§2.2: "the
  // actual address matters little, as long as reader and writer agree").
  std::vector<Pmc> pmcs = {MakePmc(0x2000, 11, 0x2000, 22)};
  RaceReport race;
  race.write_site = 11;
  race.other_site = 22;
  race.addr = 0x9000;
  RacePmcVerdict verdict = VerifyRaceAgainstPmcs(race, pmcs);
  EXPECT_TRUE(verdict.predicted);
  EXPECT_FALSE(verdict.exact_range);
}

TEST(VerifyRaceTest, RoleInsensitive) {
  std::vector<Pmc> pmcs = {MakePmc(0x2000, 11, 0x2000, 22)};
  RaceReport race;
  race.write_site = 22;  // Roles flipped (write/write race attribution).
  race.other_site = 11;
  race.addr = 0x2000;
  EXPECT_TRUE(VerifyRaceAgainstPmcs(race, pmcs).predicted);
}

TEST(VerifyRaceTest, UnpredictedRace) {
  std::vector<Pmc> pmcs = {MakePmc(0x2000, 11, 0x2000, 22)};
  RaceReport race;
  race.write_site = 33;
  race.other_site = 44;
  race.addr = 0x2000;
  EXPECT_FALSE(VerifyRaceAgainstPmcs(race, pmcs).predicted);
}

TEST(DescribeRaceTest, MentionsPredictionAndSites) {
  std::vector<Pmc> pmcs = {MakePmc(0x2000, 11, 0x2000, 22)};
  RaceReport race;
  race.write_site = 11;
  race.other_site = 22;
  race.addr = 0x2000;
  std::string text = DescribeRace(race, pmcs);
  EXPECT_NE(text.find("predicted by PMC #0"), std::string::npos);
  EXPECT_NE(text.find("exact range"), std::string::npos);

  race.write_site = 33;
  text = DescribeRace(race, pmcs);
  EXPECT_NE(text.find("incidental"), std::string::npos);
}

TEST(ExtractCommunicationsTest, FindsCrossThreadDataFlow) {
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11, 5));
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22, 5));  // Sees the 5.
  std::vector<ObservedCommunication> comms = ExtractCommunications(trace);
  ASSERT_EQ(comms.size(), 1u);
  EXPECT_EQ(comms[0].writer_vcpu, 0);
  EXPECT_EQ(comms[0].reader_vcpu, 1);
  EXPECT_EQ(comms[0].write_site, 11u);
  EXPECT_EQ(comms[0].read_site, 22u);
}

TEST(ExtractCommunicationsTest, IgnoresSameThreadAndStaleReads) {
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11, 5));
  trace.push_back(AccessEvent(0, AccessType::kRead, 0x2000, 12, 5));  // Same thread.
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22, 9));  // Stale value.
  EXPECT_TRUE(ExtractCommunications(trace).empty());
}

TEST(ExtractCommunicationsTest, BoundedResults) {
  Trace trace;
  for (int i = 0; i < 50; i++) {
    trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11, i));
    trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22, i));
  }
  EXPECT_EQ(ExtractCommunications(trace, 10).size(), 10u);
}

TEST(FormatScheduleTailTest, RendersAccessesAndYields) {
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, SB_SITE(), 5));
  Event yield;
  yield.kind = EventKind::kYield;
  yield.vcpu = 0;
  trace.push_back(yield);
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, SB_SITE(), 5));
  std::string text = FormatScheduleTail(trace);
  EXPECT_NE(text.find("[vcpu0] W"), std::string::npos);
  EXPECT_NE(text.find("yield"), std::string::npos);
  EXPECT_NE(text.find("[vcpu1] R"), std::string::npos);
}

TEST(PostmortemE2eTest, CampaignRaceIsPmcPredicted) {
  // End-to-end: the MAC race found through PMC-guided testing must verify against the PMC
  // set that generated the test.
  KernelVm vm;
  std::vector<Program> seeds = SeedPrograms();
  std::vector<Program> corpus = {seeds[2], seeds[3]};
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  ConcurrentTest test;
  test.writer = corpus[0];
  test.reader = corpus[1];
  for (const Pmc& pmc : pmcs) {
    test.hint = pmc.key;  // Any hint: both tests always run; the race oracle sees all.
    break;
  }
  ExplorerOptions options;
  options.num_trials = 16;
  ExploreOutcome outcome = ExploreConcurrentTest(vm, test, nullptr, options);
  bool verified = false;
  for (const RaceReport& race : outcome.races) {
    if (ClassifyRace(race) == 9) {
      verified = VerifyRaceAgainstPmcs(race, pmcs).predicted;
    }
  }
  EXPECT_TRUE(verified);
}

}  // namespace
}  // namespace snowboard
