// Property tests for the dirty-page delta restore (Memory::RestoreDirty).
//
// The contract under test: after RestoreDirty(snap), the arena is BYTE-IDENTICAL to
// snap.bytes — i.e. delta restore is indistinguishable from the reference full Restore —
// no matter what workload ran in between (random syscall programs, panicking trials,
// repeated restore→run→restore cycles, StaticAlloc after the snapshot). This is the
// invariant that lets every pipeline stage use the delta path blindly.
#include <gtest/gtest.h>

#include <vector>

#include "src/fuzz/generator.h"
#include "src/kernel/task.h"
#include "src/sim/memory.h"
#include "src/snowboard/pipeline.h"

namespace snowboard {
namespace {

// Runs `program` on vCPU 0 of `vm` (outcome irrelevant — panics and hangs are workloads
// too; the restore must erase them just the same).
void RunWorkload(KernelVm& vm, const Program& program) {
  Engine::RunOptions opts;
  opts.max_instructions = 400'000;
  Engine::RunResult result =
      vm.engine().Run({MakeProgramRunner(vm.globals(), program, 0)}, opts);
  (void)result;
}

TEST(SnapshotDeltaPropertyTest, RandomWorkloadsRestoreByteIdentical) {
  KernelVm vm;
  Memory& mem = vm.engine().mem();
  Memory::Snapshot snap = mem.TakeSnapshot();

  Generator gen(0x5eed5eedull);
  for (int iter = 0; iter < 30; iter++) {
    RunWorkload(vm, gen.Generate());
    Memory::RestoreStats stats = mem.RestoreDirty(snap);
    EXPECT_FALSE(stats.full) << "tracking was anchored; no fallback expected";
    ASSERT_EQ(mem.raw_bytes(), snap.bytes) << "delta restore diverged at iter " << iter;
    EXPECT_EQ(mem.DirtyPageCount(), 0u);
  }
}

TEST(SnapshotDeltaPropertyTest, MatchesFullRestoreOnIdenticalWorkloads) {
  // Two identical VMs run the same workloads; one restores via the delta path, the other
  // via the reference full path. Their arenas must stay byte-identical throughout.
  KernelVm delta_vm;
  KernelVm full_vm;
  Memory& delta_mem = delta_vm.engine().mem();
  Memory& full_mem = full_vm.engine().mem();
  ASSERT_EQ(delta_mem.raw_bytes(), full_mem.raw_bytes()) << "boot must be deterministic";

  Memory::Snapshot delta_snap = delta_mem.TakeSnapshot();
  Memory::Snapshot full_snap = full_mem.TakeSnapshot();

  Generator gen(42);
  for (int iter = 0; iter < 10; iter++) {
    Program program = gen.Generate();
    RunWorkload(delta_vm, program);
    RunWorkload(full_vm, program);
    delta_mem.RestoreDirty(delta_snap);
    full_mem.Restore(full_snap);
    ASSERT_EQ(delta_mem.raw_bytes(), full_mem.raw_bytes()) << "diverged at iter " << iter;
  }
}

TEST(SnapshotDeltaPropertyTest, RepeatedCyclesWithSeedPrograms) {
  KernelVm vm;
  Memory& mem = vm.engine().mem();
  Memory::Snapshot snap = mem.TakeSnapshot();

  const std::vector<Program> seeds = SeedPrograms();
  for (int cycle = 0; cycle < 3; cycle++) {
    for (size_t i = 0; i < seeds.size(); i++) {
      RunWorkload(vm, seeds[i]);
      Memory::RestoreStats stats = mem.RestoreDirty(snap);
      EXPECT_FALSE(stats.full);
      ASSERT_EQ(mem.raw_bytes(), snap.bytes)
          << "cycle " << cycle << ", seed program " << i;
    }
  }
}

TEST(SnapshotDeltaPropertyTest, StaticAllocAfterSnapshotIsRewound) {
  Memory mem(1 << 16);
  GuestAddr before = mem.StaticAlloc(100);
  mem.FillRaw(before, 100, 0x11);
  Memory::Snapshot snap = mem.TakeSnapshot();

  // Post-snapshot static allocation + writes: the delta restore must rewind both the
  // bytes and the bump pointer, so re-allocating yields the same address again.
  GuestAddr scratch = mem.StaticAlloc(4096);
  mem.FillRaw(scratch, 4096, 0x5a);
  Memory::RestoreStats stats = mem.RestoreDirty(snap);
  EXPECT_FALSE(stats.full);
  EXPECT_EQ(mem.raw_bytes(), snap.bytes);
  EXPECT_EQ(mem.StaticAlloc(4096), scratch);
}

TEST(SnapshotDeltaPropertyTest, TrialWorkloadCopiesFarFewerBytesThanFullRestore) {
  // The perf claim behind the whole scheme (quantified precisely by the benchmarks):
  // a syscall-program trial dirties a small fraction of the 1 MiB arena, so delta
  // restores must move at least 5x fewer bytes than repeated full restores would.
  KernelVm vm;
  Memory& mem = vm.engine().mem();
  Memory::Snapshot snap = mem.TakeSnapshot();

  const std::vector<Program> seeds = SeedPrograms();
  uint64_t delta_bytes = 0;
  uint64_t full_bytes = 0;
  for (const Program& program : seeds) {
    RunWorkload(vm, program);
    Memory::RestoreStats stats = mem.RestoreDirty(snap);
    ASSERT_FALSE(stats.full);
    delta_bytes += stats.bytes_copied;
    full_bytes += mem.size();
  }
  EXPECT_GE(full_bytes, 5 * delta_bytes)
      << "delta restores copied " << delta_bytes << " bytes vs " << full_bytes
      << " for full restores";
}

}  // namespace
}  // namespace snowboard
