// Tests for sequential profiling (§4.1): shared-access extraction, stack filtering,
// fixed-initial-state reproducibility, and double-fetch leader detection.
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/kernel/ipc/msg.h"
#include "src/kernel/task.h"
#include "src/sim/stackfilter.h"
#include "src/snowboard/profile.h"

namespace snowboard {
namespace {

Program MsggetProgram(uint32_t key) {
  Program p;
  p.calls.push_back(Call{kSysMsgget, {Arg::Const(static_cast<int64_t>(key))}});
  return p;
}

TEST(ProfileTest, ProfilesCompleteAndContainAccesses) {
  KernelVm vm;
  SequentialProfile profile = ProfileTest(vm, MsggetProgram(2), 0);
  EXPECT_TRUE(profile.ok);
  EXPECT_GT(profile.accesses.size(), 10u);
  for (const SharedAccess& access : profile.accesses) {
    EXPECT_NE(access.site, kInvalidSite);
    EXPECT_GE(access.len, 1);
    EXPECT_LE(access.len, 8);
  }
}

TEST(ProfileTest, StackAccessesAreExcluded) {
  KernelVm vm;
  // SbfsWrite uses a StackFrame journal handle; its accesses must not appear.
  Program p;
  p.calls.push_back(Call{kSysOpen, {Arg::Const(0), Arg::Const(0)}});
  p.calls.push_back(Call{kSysWrite, {Arg::Result(0), Arg::Const(16), Arg::Const(7)}});
  SequentialProfile profile = ProfileTest(vm, p, 0);
  ASSERT_TRUE(profile.ok);
  GuestAddr stack = static_cast<GuestAddr>(
      vm.engine().mem().ReadRaw(vm.globals().tasks[0] + kTaskStackBase, 4));
  for (const SharedAccess& access : profile.accesses) {
    EXPECT_FALSE(access.addr >= stack && access.addr < stack + kKernelStackSize)
        << "stack access leaked into the shared profile";
  }
}

TEST(ProfileTest, SameSnapshotSameProfile) {
  // The fixed-initial-state property (§4.1): profiling the same test twice yields
  // byte-identical access streams.
  KernelVm vm;
  SequentialProfile a = ProfileTest(vm, MsggetProgram(2), 0);
  SequentialProfile b = ProfileTest(vm, MsggetProgram(2), 0);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  ASSERT_EQ(a.accesses.size(), b.accesses.size());
  for (size_t i = 0; i < a.accesses.size(); i++) {
    EXPECT_EQ(a.accesses[i].addr, b.accesses[i].addr);
    EXPECT_EQ(a.accesses[i].value, b.accesses[i].value);
    EXPECT_EQ(a.accesses[i].site, b.accesses[i].site);
  }
}

TEST(ProfileTest, DifferentVmsSameLayoutSameProfile) {
  KernelVm vm_a;
  KernelVm vm_b;
  SequentialProfile a = ProfileTest(vm_a, MsggetProgram(3), 0);
  SequentialProfile b = ProfileTest(vm_b, MsggetProgram(3), 0);
  ASSERT_EQ(a.accesses.size(), b.accesses.size());
  for (size_t i = 0; i < a.accesses.size(); i++) {
    EXPECT_EQ(a.accesses[i].addr, b.accesses[i].addr);
  }
}

TEST(ProfileTest, ProfileCorpusKeepsTestIds) {
  KernelVm vm;
  std::vector<Program> corpus = {MsggetProgram(1), MsggetProgram(2)};
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].test_id, 0);
  EXPECT_EQ(profiles[1].test_id, 1);
}

TEST(DoubleFetchTest, LeaderDetected) {
  std::vector<SharedAccess> accesses;
  auto read = [](GuestAddr addr, SiteId site, uint64_t value) {
    SharedAccess a;
    a.type = AccessType::kRead;
    a.addr = addr;
    a.len = 4;
    a.site = site;
    a.value = value;
    return a;
  };
  accesses.push_back(read(0x2000, 11, 7));
  accesses.push_back(read(0x2000, 22, 7));  // Second fetch, different site, same value.
  ComputeDoubleFetchLeaders(&accesses);
  EXPECT_TRUE(accesses[0].df_leader);
  EXPECT_FALSE(accesses[1].df_leader);
}

TEST(DoubleFetchTest, SameSiteIsNotADoubleFetch) {
  std::vector<SharedAccess> accesses;
  SharedAccess a;
  a.type = AccessType::kRead;
  a.addr = 0x2000;
  a.len = 4;
  a.site = 11;
  a.value = 7;
  accesses.push_back(a);
  accesses.push_back(a);  // Loop re-reading via the same instruction.
  ComputeDoubleFetchLeaders(&accesses);
  EXPECT_FALSE(accesses[0].df_leader);
}

TEST(DoubleFetchTest, InterveningWriteBreaksThePair) {
  std::vector<SharedAccess> accesses;
  SharedAccess r1;
  r1.type = AccessType::kRead;
  r1.addr = 0x2000;
  r1.len = 4;
  r1.site = 11;
  r1.value = 7;
  SharedAccess w = r1;
  w.type = AccessType::kWrite;
  w.site = 33;
  SharedAccess r2 = r1;
  r2.site = 22;
  accesses = {r1, w, r2};
  ComputeDoubleFetchLeaders(&accesses);
  EXPECT_FALSE(accesses[0].df_leader);
}

TEST(DoubleFetchTest, DifferentValuesNotADoubleFetch) {
  std::vector<SharedAccess> accesses;
  SharedAccess r1;
  r1.type = AccessType::kRead;
  r1.addr = 0x2000;
  r1.len = 4;
  r1.site = 11;
  r1.value = 7;
  SharedAccess r2 = r1;
  r2.site = 22;
  r2.value = 9;
  accesses = {r1, r2};
  ComputeDoubleFetchLeaders(&accesses);
  EXPECT_FALSE(accesses[0].df_leader);
}

TEST(DoubleFetchTest, RhtLookupProfileHasLeader) {
  // End-to-end: the rhashtable double fetch must surface as a df_leader in a real profile
  // of msgget on an existing queue (lookup hit path reads the bucket twice).
  KernelVm vm;
  Program p;
  p.calls.push_back(Call{kSysMsgget, {Arg::Const(2)}});
  p.calls.push_back(Call{kSysMsgget, {Arg::Const(2)}});  // Second get: lookup hit.
  SequentialProfile profile = ProfileTest(vm, p, 0);
  ASSERT_TRUE(profile.ok);
  bool saw_leader = false;
  for (const SharedAccess& access : profile.accesses) {
    saw_leader = saw_leader || access.df_leader;
  }
  EXPECT_TRUE(saw_leader);
}

}  // namespace
}  // namespace snowboard
