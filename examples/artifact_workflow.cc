// The artifact workflow: the paper's deployment splits the pipeline into stages connected
// by stored artifacts (profiled corpus -> PMC database -> distributed test queue), and
// ships reproducible bug reports. This example walks that lifecycle on disk:
//
//   1. build a corpus and SAVE it,
//   2. reload it (as a separate identification job would), identify + SAVE the PMCs,
//   3. reload the PMCs, generate concurrent tests, and explore,
//   4. capture the first panic as a replayable BugCapsule and REPLAY it from the recording
//      (the §6 "deterministic reproduction" workflow a bug report would use).
#include <cstdio>

#include "src/snowboard/pipeline.h"
#include "src/snowboard/replay.h"
#include "src/snowboard/serialize.h"

using namespace snowboard;

int main() {
  const std::string dir = "/tmp";
  const std::string corpus_path = dir + "/snowboard_corpus.txt";
  const std::string pmcs_path = dir + "/snowboard_pmcs.txt";

  // Stage 1: fuzz a corpus and persist it.
  KernelVm vm;
  CorpusOptions corpus_options;
  corpus_options.seed = 42;
  corpus_options.max_iterations = 200;
  corpus_options.target_size = 60;
  std::vector<Program> corpus = CorpusPrograms(BuildCorpus(vm, corpus_options));
  if (!WriteStringToFile(corpus_path, SerializeCorpus(corpus))) {
    std::printf("cannot write %s\n", corpus_path.c_str());
    return 1;
  }
  std::printf("stage 1: saved %zu sequential tests -> %s\n", corpus.size(),
              corpus_path.c_str());

  // Stage 2: a fresh "identification job" reloads the corpus, profiles, identifies, saves.
  std::optional<std::vector<Program>> loaded_corpus =
      DeserializeCorpus(*ReadFileToString(corpus_path));
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, *loaded_corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  WriteStringToFile(pmcs_path, SerializePmcs(pmcs));
  std::printf("stage 2: identified and saved %zu PMCs -> %s\n", pmcs.size(),
              pmcs_path.c_str());

  // Stage 3: a "worker" reloads the PMC database and explores S-INS-PAIR exemplars.
  std::optional<std::vector<Pmc>> loaded_pmcs = DeserializePmcs(*ReadFileToString(pmcs_path));
  std::vector<PmcCluster> clusters = ClusterPmcs(*loaded_pmcs, Strategy::kSInsPair);
  SelectOptions select;
  select.max_tests = 200;
  std::vector<ConcurrentTest> tests =
      SelectConcurrentTests(*loaded_pmcs, clusters, *loaded_corpus, select);
  std::printf("stage 3: %zu clusters -> %zu concurrent tests; exploring...\n",
              clusters.size(), tests.size());

  // Stage 4: find a panicking trial and capture + replay it.
  for (size_t i = 0; i < tests.size(); i++) {
    for (int trial = 0; trial < 24; trial++) {
      BugCapsule capsule;
      Engine::RunResult result =
          ReproduceTrial(vm, tests[i], /*seed=*/2021 + i * 1000003ull, trial, &capsule);
      if (!result.panicked) {
        continue;
      }
      std::printf("stage 4: test %zu trial %d panicked:\n  %s\n", i, trial,
                  result.panic_message.c_str());
      std::printf("  recorded schedule: %zu decisions, %zu switches\n",
                  capsule.schedule.switch_after.size(),
                  static_cast<size_t>(std::count(capsule.schedule.switch_after.begin(),
                                                 capsule.schedule.switch_after.end(), true)));
      bool replayed = ReplayCapsule(vm, capsule);
      std::printf("  replay from recording: %s\n",
                  replayed ? "IDENTICAL PANIC REPRODUCED" : "failed");
      return replayed ? 0 : 1;
    }
  }
  std::printf("no panic found within the budget\n");
  return 1;
}
