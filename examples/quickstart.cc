// Quickstart: the whole Snowboard pipeline in ~60 lines.
//
//   1. Boot the mini-kernel VM and snapshot its fixed initial state.
//   2. Write two sequential tests (here: the Figure 1 l2tp writer/reader programs).
//   3. Profile them and identify PMCs (Algorithm 1).
//   4. Cluster + select concurrent tests (S-INS-PAIR), then explore interleavings with the
//      PMC as a scheduling hint (Algorithm 2).
//   5. Print what the bug detectors caught.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/fuzz/generator.h"
#include "src/sim/site.h"
#include "src/snowboard/pipeline.h"

using namespace snowboard;

int main() {
  // 1. A booted VM: kernel state lives in the arena; the snapshot is taken at construction.
  KernelVm vm;

  // 2. Two sequential tests. SeedPrograms()[0]/[1] are exactly Figure 1's test 1 & 2:
  //      r0 = socket(PX_PROTO_OL2TP); r1 = socket(AF_INET); connect(r0, tid=1) [; sendmsg].
  std::vector<Program> corpus = {SeedPrograms()[0], SeedPrograms()[1]};
  std::printf("--- sequential tests ---\n%s\n---\n%s\n---\n", corpus[0].Format().c_str(),
              corpus[1].Format().c_str());

  // 3. Profile from the fixed initial state, then run Algorithm 1.
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  std::printf("identified %zu PMCs from %zu + %zu shared accesses\n", pmcs.size(),
              profiles[0].accesses.size(), profiles[1].accesses.size());

  // 4. Cluster (S-INS-PAIR), prioritize uncommon-first, and build concurrent tests.
  std::vector<PmcCluster> clusters = ClusterPmcs(pmcs, Strategy::kSInsPair);
  SelectOptions select;
  select.seed = 7;
  std::vector<ConcurrentTest> tests = SelectConcurrentTests(pmcs, clusters, corpus, select);
  std::printf("%zu clusters -> %zu concurrent tests\n", clusters.size(), tests.size());

  // 5. Explore each test's interleavings with its PMC hint; report findings.
  FindingsLog findings;
  ExplorerOptions explorer;
  explorer.num_trials = 32;
  for (size_t i = 0; i < tests.size(); i++) {
    explorer.seed = 2021 + i * 1000003ull;
    ExploreOutcome outcome = ExploreConcurrentTest(vm, tests[i], nullptr, explorer);
    for (const RaceReport& race : outcome.races) {
      Finding finding;
      finding.issue_id = ClassifyRace(race);
      finding.evidence = "data race: " + SiteName(race.write_site) + " / " +
                         SiteName(race.other_site);
      finding.test_index = i;
      finding.trial = outcome.first_bug_trial;
      findings.Record(finding);
    }
    for (const std::string& line : outcome.panic_messages) {
      Finding finding;
      finding.issue_id = ClassifyConsoleLine(line);
      finding.evidence = line;
      finding.test_index = i;
      finding.trial = outcome.first_bug_trial;
      findings.Record(finding);
    }
  }
  std::printf("\n--- findings (%zu raw) ---\n%s", findings.total_findings(),
              findings.Summarize().c_str());
  return 0;
}
