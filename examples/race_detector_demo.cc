// Demonstrates the execution engine and data-race oracle directly, without the Snowboard
// pipeline: runs the Figure 3 MAC-address test pair under an aggressive preemption schedule
// and prints the detector's view — including the torn 4-new/2-old MAC the user receives.
#include <cstdio>

#include "src/kernel/net/netdev.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"
#include "src/snowboard/detectors.h"

using namespace snowboard;

namespace {

// Preempts the writer right between its two MAC copy chunks.
class TornMacScheduler : public Scheduler {
 public:
  explicit TornMacScheduler(GuestAddr dev_addr) : dev_addr_(dev_addr) {}
  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    return vcpu == 0 && access.type == AccessType::kWrite && access.addr == dev_addr_ &&
           access.len == 4;
  }

 private:
  GuestAddr dev_addr_;
};

}  // namespace

int main() {
  KernelVm vm;
  const KernelGlobals& g = vm.globals();

  GuestAddr dev = kGuestNull;
  vm.engine().RunSequential([&](Ctx& ctx) {
    TaskEnter(ctx, g.tasks[0]);
    dev = DevGetByIndex(ctx, g, 0);
  });
  vm.RestoreSnapshot();

  std::printf("eth0 boot MAC: AA:AA:AA:AA:AA:AA\n");
  std::printf("writer: ioctl(SIOCSIFHWADDR) -> eth_commit_mac_addr_change() under "
              "rtnl_lock\nreader: ioctl(SIOCGIFHWADDR) -> dev_ifsioc_locked() under "
              "rcu_read_lock — a DIFFERENT lock\n\n");

  TornMacScheduler scheduler(dev + kDevAddr);
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  int64_t observed = 0;
  Engine::RunResult result = vm.engine().Run(
      {[&](Ctx& ctx) {
         TaskEnter(ctx, g.tasks[0]);
         DevIoctlSetMac(ctx, g, 0, 3);  // New MAC pattern 43:44:45:46:47:48.
       },
       [&](Ctx& ctx) {
         TaskEnter(ctx, g.tasks[1]);
         observed = DevIoctlGetMac(ctx, g, 0);
       }},
      opts);

  std::printf("reader observed MAC: %02llX:%02llX:%02llX:%02llX:%02llX:%02llX   <- torn!\n\n",
              (static_cast<unsigned long long>(observed) >> 0) & 0xFF,
              (static_cast<unsigned long long>(observed) >> 8) & 0xFF,
              (static_cast<unsigned long long>(observed) >> 16) & 0xFF,
              (static_cast<unsigned long long>(observed) >> 24) & 0xFF,
              (static_cast<unsigned long long>(observed) >> 32) & 0xFF,
              (static_cast<unsigned long long>(observed) >> 40) & 0xFF);

  DetectorResult detectors = RunDetectors(result);
  std::printf("race detector reports (%zu):\n", detectors.races.size());
  for (const RaceReport& race : detectors.races) {
    std::printf("  %s  %s  /  %s  @0x%x\n", race.write_write ? "W/W" : "W/R",
                SiteName(race.write_site).c_str(), SiteName(race.other_site).c_str(),
                race.addr);
  }
  return detectors.races.empty() ? 1 : 0;
}
