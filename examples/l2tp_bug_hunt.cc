// A guided walk through the paper's Figure 1 case study (§5.2 Case 2, Table 2 issue #12):
// the l2tp order-violation bug — a kernel NULL pointer dereference that involves NO data
// race, found through the PMC between tunnel registration and retrieval.
//
// The example shows each pipeline stage's view of the bug, then demonstrates why the PMC
// scheduling hint matters: Algorithm 2 exposes the panic in a handful of trials, while
// SKI-style unguided exploration needs far more.
#include <cstdio>

#include "src/fuzz/generator.h"
#include "src/kernel/net/l2tp.h"
#include "src/sim/site.h"
#include "src/ski/baselines.h"
#include "src/snowboard/pipeline.h"

using namespace snowboard;

int main() {
  KernelVm vm;
  const KernelGlobals& g = vm.globals();

  std::vector<Program> corpus = {SeedPrograms()[0], SeedPrograms()[1]};
  std::printf("Test 1 (writer):\n%s\n\nTest 2 (reader):\n%s\n\n",
              corpus[0].Format().c_str(), corpus[1].Format().c_str());

  // Stage 1-2: profile + identify. Among the PMCs is the Figure 1 channel: the writer's
  // list_add_rcu publish into l2tp_tunnel_list vs the reader's list-head load.
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  GuestAddr list_head = g.l2tp + kL2tpListHead;
  const Pmc* channel = nullptr;
  for (const Pmc& pmc : pmcs) {
    if (pmc.key.write.addr == list_head && pmc.key.read.addr == list_head &&
        pmc.key.write.value != 0) {
      channel = &pmc;
      break;
    }
  }
  if (channel == nullptr) {
    std::printf("ERROR: the tunnel-registration PMC was not identified\n");
    return 1;
  }
  std::printf("PMC channel (the ➊→➌ data flow of Figure 1):\n"
              "  write: %s  [0x%x..+%u] value=0x%llx  (tunnel published)\n"
              "  read:  %s  [0x%x..+%u] value=0x%llx  (reader saw an empty list "
              "sequentially)\n\n",
              SiteName(channel->key.write.site).c_str(), channel->key.write.addr,
              channel->key.write.len,
              static_cast<unsigned long long>(channel->key.write.value),
              SiteName(channel->key.read.site).c_str(), channel->key.read.addr,
              channel->key.read.len,
              static_cast<unsigned long long>(channel->key.read.value));

  ConcurrentTest test;
  test.writer = corpus[0];
  test.reader = corpus[1];
  test.write_test = 0;
  test.read_test = 1;
  test.hint = channel->key;

  // Stage 4: Algorithm 2 vs SKI, counting interleavings to the #12 panic (§5.4's
  // "9.76 vs 826.29 interleavings per test").
  ExposeComparison comparison =
      CompareTrialsToExpose(vm, test, /*target_issue=*/12, /*max_trials=*/1024, /*seed=*/3);
  std::printf("Snowboard (PMC hint): %s after %d interleaving(s)\n",
              comparison.snowboard_found ? "panic exposed" : "not exposed",
              comparison.snowboard_trials);
  std::printf("SKI (unguided PCT):   %s after %d interleaving(s)\n",
              comparison.ski_found ? "panic exposed" : "not exposed",
              comparison.ski_trials);

  // Show the actual panic for the record.
  ExplorerOptions options;
  options.num_trials = 64;
  options.target_issue = 12;
  ExploreOutcome outcome = ExploreConcurrentTest(vm, test, nullptr, options);
  for (const std::string& line : outcome.panic_messages) {
    std::printf("\nguest console: %s\n", line.c_str());
  }
  std::printf("\nNote: no data race is involved — the list is RCU-protected and "
              "tunnel->sock uses WRITE_ONCE/READ_ONCE;\nthe bug is the publish ORDER "
              "(sock initialized after the tunnel becomes visible).\n");
  return outcome.target_found ? 0 : 1;
}
