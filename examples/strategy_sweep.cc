// Compares the PMC clustering strategies head-to-head on a small fixed budget — a
// miniature of the paper's Table 3 experiment. Shows how the strategy choice changes the
// number of clusters (exemplar PMCs) and which issues a fixed budget uncovers.
//
// Usage: strategy_sweep [test_budget] [workers]
#include <cstdio>
#include <cstdlib>

#include "src/snowboard/pipeline.h"

using namespace snowboard;

int main(int argc, char** argv) {
  size_t budget = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 120;
  int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  static constexpr Strategy kStrategies[] = {
      Strategy::kSFull,          Strategy::kSCh,           Strategy::kSChNull,
      Strategy::kSChUnaligned,   Strategy::kSChDouble,     Strategy::kSIns,
      Strategy::kSInsPair,       Strategy::kSMem,          Strategy::kRandomSInsPair,
      Strategy::kRandomPairing,  Strategy::kDuplicatePairing,
  };

  std::printf("%-20s %10s %8s %8s %s\n", "strategy", "clusters", "tested", "issues",
              "found (first-test index)");
  for (Strategy strategy : kStrategies) {
    PipelineOptions options;
    options.seed = 1;
    options.corpus.seed = 42;
    options.corpus.max_iterations = 300;
    options.corpus.target_size = 80;
    options.strategy = strategy;
    options.max_concurrent_tests = budget;
    options.explorer.num_trials = 16;
    options.num_workers = workers;

    PipelineResult result = RunSnowboardPipeline(options);
    std::string found;
    size_t issues = 0;
    for (const auto& [id, finding] : result.findings.first_findings()) {
      if (id == 0) {
        continue;
      }
      issues++;
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "#%d(%zu) ", id, finding.test_index);
      found += buffer;
    }
    std::printf("%-20s %10zu %8zu %8zu %s\n", StrategyName(strategy), result.cluster_count,
                result.tests_executed, issues, found.c_str());
  }
  return 0;
}
