
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/block/blockdev.cc" "src/CMakeFiles/sb_kernel.dir/kernel/block/blockdev.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/block/blockdev.cc.o.d"
  "/root/repo/src/kernel/boot.cc" "src/CMakeFiles/sb_kernel.dir/kernel/boot.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/boot.cc.o.d"
  "/root/repo/src/kernel/fs/configfs.cc" "src/CMakeFiles/sb_kernel.dir/kernel/fs/configfs.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/fs/configfs.cc.o.d"
  "/root/repo/src/kernel/fs/sbfs.cc" "src/CMakeFiles/sb_kernel.dir/kernel/fs/sbfs.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/fs/sbfs.cc.o.d"
  "/root/repo/src/kernel/fs/vfs.cc" "src/CMakeFiles/sb_kernel.dir/kernel/fs/vfs.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/fs/vfs.cc.o.d"
  "/root/repo/src/kernel/ipc/msg.cc" "src/CMakeFiles/sb_kernel.dir/kernel/ipc/msg.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/ipc/msg.cc.o.d"
  "/root/repo/src/kernel/kalloc.cc" "src/CMakeFiles/sb_kernel.dir/kernel/kalloc.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/kalloc.cc.o.d"
  "/root/repo/src/kernel/mm/pagecache.cc" "src/CMakeFiles/sb_kernel.dir/kernel/mm/pagecache.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/mm/pagecache.cc.o.d"
  "/root/repo/src/kernel/net/fib6.cc" "src/CMakeFiles/sb_kernel.dir/kernel/net/fib6.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/net/fib6.cc.o.d"
  "/root/repo/src/kernel/net/l2tp.cc" "src/CMakeFiles/sb_kernel.dir/kernel/net/l2tp.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/net/l2tp.cc.o.d"
  "/root/repo/src/kernel/net/netdev.cc" "src/CMakeFiles/sb_kernel.dir/kernel/net/netdev.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/net/netdev.cc.o.d"
  "/root/repo/src/kernel/net/packet.cc" "src/CMakeFiles/sb_kernel.dir/kernel/net/packet.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/net/packet.cc.o.d"
  "/root/repo/src/kernel/net/tcp_cong.cc" "src/CMakeFiles/sb_kernel.dir/kernel/net/tcp_cong.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/net/tcp_cong.cc.o.d"
  "/root/repo/src/kernel/rhashtable.cc" "src/CMakeFiles/sb_kernel.dir/kernel/rhashtable.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/rhashtable.cc.o.d"
  "/root/repo/src/kernel/sound/ctl.cc" "src/CMakeFiles/sb_kernel.dir/kernel/sound/ctl.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/sound/ctl.cc.o.d"
  "/root/repo/src/kernel/syscalls.cc" "src/CMakeFiles/sb_kernel.dir/kernel/syscalls.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/syscalls.cc.o.d"
  "/root/repo/src/kernel/task.cc" "src/CMakeFiles/sb_kernel.dir/kernel/task.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/task.cc.o.d"
  "/root/repo/src/kernel/tty/serial.cc" "src/CMakeFiles/sb_kernel.dir/kernel/tty/serial.cc.o" "gcc" "src/CMakeFiles/sb_kernel.dir/kernel/tty/serial.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
