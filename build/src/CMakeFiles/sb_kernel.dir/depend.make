# Empty dependencies file for sb_kernel.
# This may be replaced when dependencies are built.
