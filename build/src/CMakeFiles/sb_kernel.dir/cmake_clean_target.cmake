file(REMOVE_RECURSE
  "libsb_kernel.a"
)
