file(REMOVE_RECURSE
  "CMakeFiles/sb_sim.dir/sim/console.cc.o"
  "CMakeFiles/sb_sim.dir/sim/console.cc.o.d"
  "CMakeFiles/sb_sim.dir/sim/engine.cc.o"
  "CMakeFiles/sb_sim.dir/sim/engine.cc.o.d"
  "CMakeFiles/sb_sim.dir/sim/liveness.cc.o"
  "CMakeFiles/sb_sim.dir/sim/liveness.cc.o.d"
  "CMakeFiles/sb_sim.dir/sim/memory.cc.o"
  "CMakeFiles/sb_sim.dir/sim/memory.cc.o.d"
  "CMakeFiles/sb_sim.dir/sim/site.cc.o"
  "CMakeFiles/sb_sim.dir/sim/site.cc.o.d"
  "CMakeFiles/sb_sim.dir/sim/sync.cc.o"
  "CMakeFiles/sb_sim.dir/sim/sync.cc.o.d"
  "libsb_sim.a"
  "libsb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
