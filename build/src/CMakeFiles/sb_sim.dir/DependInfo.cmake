
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/console.cc" "src/CMakeFiles/sb_sim.dir/sim/console.cc.o" "gcc" "src/CMakeFiles/sb_sim.dir/sim/console.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/sb_sim.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/sb_sim.dir/sim/engine.cc.o.d"
  "/root/repo/src/sim/liveness.cc" "src/CMakeFiles/sb_sim.dir/sim/liveness.cc.o" "gcc" "src/CMakeFiles/sb_sim.dir/sim/liveness.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/CMakeFiles/sb_sim.dir/sim/memory.cc.o" "gcc" "src/CMakeFiles/sb_sim.dir/sim/memory.cc.o.d"
  "/root/repo/src/sim/site.cc" "src/CMakeFiles/sb_sim.dir/sim/site.cc.o" "gcc" "src/CMakeFiles/sb_sim.dir/sim/site.cc.o.d"
  "/root/repo/src/sim/sync.cc" "src/CMakeFiles/sb_sim.dir/sim/sync.cc.o" "gcc" "src/CMakeFiles/sb_sim.dir/sim/sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
