
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/corpus.cc" "src/CMakeFiles/sb_fuzz.dir/fuzz/corpus.cc.o" "gcc" "src/CMakeFiles/sb_fuzz.dir/fuzz/corpus.cc.o.d"
  "/root/repo/src/fuzz/coverage.cc" "src/CMakeFiles/sb_fuzz.dir/fuzz/coverage.cc.o" "gcc" "src/CMakeFiles/sb_fuzz.dir/fuzz/coverage.cc.o.d"
  "/root/repo/src/fuzz/generator.cc" "src/CMakeFiles/sb_fuzz.dir/fuzz/generator.cc.o" "gcc" "src/CMakeFiles/sb_fuzz.dir/fuzz/generator.cc.o.d"
  "/root/repo/src/fuzz/program.cc" "src/CMakeFiles/sb_fuzz.dir/fuzz/program.cc.o" "gcc" "src/CMakeFiles/sb_fuzz.dir/fuzz/program.cc.o.d"
  "/root/repo/src/fuzz/syscall_desc.cc" "src/CMakeFiles/sb_fuzz.dir/fuzz/syscall_desc.cc.o" "gcc" "src/CMakeFiles/sb_fuzz.dir/fuzz/syscall_desc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sb_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
