file(REMOVE_RECURSE
  "CMakeFiles/sb_fuzz.dir/fuzz/corpus.cc.o"
  "CMakeFiles/sb_fuzz.dir/fuzz/corpus.cc.o.d"
  "CMakeFiles/sb_fuzz.dir/fuzz/coverage.cc.o"
  "CMakeFiles/sb_fuzz.dir/fuzz/coverage.cc.o.d"
  "CMakeFiles/sb_fuzz.dir/fuzz/generator.cc.o"
  "CMakeFiles/sb_fuzz.dir/fuzz/generator.cc.o.d"
  "CMakeFiles/sb_fuzz.dir/fuzz/program.cc.o"
  "CMakeFiles/sb_fuzz.dir/fuzz/program.cc.o.d"
  "CMakeFiles/sb_fuzz.dir/fuzz/syscall_desc.cc.o"
  "CMakeFiles/sb_fuzz.dir/fuzz/syscall_desc.cc.o.d"
  "libsb_fuzz.a"
  "libsb_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
