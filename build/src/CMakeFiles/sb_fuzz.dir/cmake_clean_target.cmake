file(REMOVE_RECURSE
  "libsb_fuzz.a"
)
