# Empty dependencies file for sb_fuzz.
# This may be replaced when dependencies are built.
