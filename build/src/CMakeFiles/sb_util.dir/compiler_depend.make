# Empty compiler generated dependencies file for sb_util.
# This may be replaced when dependencies are built.
