file(REMOVE_RECURSE
  "CMakeFiles/sb_util.dir/util/log.cc.o"
  "CMakeFiles/sb_util.dir/util/log.cc.o.d"
  "CMakeFiles/sb_util.dir/util/rng.cc.o"
  "CMakeFiles/sb_util.dir/util/rng.cc.o.d"
  "libsb_util.a"
  "libsb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
