file(REMOVE_RECURSE
  "CMakeFiles/sb_ski.dir/ski/baselines.cc.o"
  "CMakeFiles/sb_ski.dir/ski/baselines.cc.o.d"
  "CMakeFiles/sb_ski.dir/ski/ski_scheduler.cc.o"
  "CMakeFiles/sb_ski.dir/ski/ski_scheduler.cc.o.d"
  "libsb_ski.a"
  "libsb_ski.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_ski.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
