# Empty compiler generated dependencies file for sb_ski.
# This may be replaced when dependencies are built.
