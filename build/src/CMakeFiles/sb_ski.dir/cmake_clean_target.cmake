file(REMOVE_RECURSE
  "libsb_ski.a"
)
