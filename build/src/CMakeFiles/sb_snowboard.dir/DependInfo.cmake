
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snowboard/cluster.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/cluster.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/cluster.cc.o.d"
  "/root/repo/src/snowboard/detectors.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/detectors.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/detectors.cc.o.d"
  "/root/repo/src/snowboard/explorer.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/explorer.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/explorer.cc.o.d"
  "/root/repo/src/snowboard/pipeline.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/pipeline.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/pipeline.cc.o.d"
  "/root/repo/src/snowboard/pmc.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/pmc.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/pmc.cc.o.d"
  "/root/repo/src/snowboard/postmortem.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/postmortem.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/postmortem.cc.o.d"
  "/root/repo/src/snowboard/profile.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/profile.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/profile.cc.o.d"
  "/root/repo/src/snowboard/replay.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/replay.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/replay.cc.o.d"
  "/root/repo/src/snowboard/report.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/report.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/report.cc.o.d"
  "/root/repo/src/snowboard/select.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/select.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/select.cc.o.d"
  "/root/repo/src/snowboard/serialize.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/serialize.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/serialize.cc.o.d"
  "/root/repo/src/snowboard/stats.cc" "src/CMakeFiles/sb_snowboard.dir/snowboard/stats.cc.o" "gcc" "src/CMakeFiles/sb_snowboard.dir/snowboard/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sb_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sb_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
