file(REMOVE_RECURSE
  "CMakeFiles/sb_snowboard.dir/snowboard/cluster.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/cluster.cc.o.d"
  "CMakeFiles/sb_snowboard.dir/snowboard/detectors.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/detectors.cc.o.d"
  "CMakeFiles/sb_snowboard.dir/snowboard/explorer.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/explorer.cc.o.d"
  "CMakeFiles/sb_snowboard.dir/snowboard/pipeline.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/pipeline.cc.o.d"
  "CMakeFiles/sb_snowboard.dir/snowboard/pmc.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/pmc.cc.o.d"
  "CMakeFiles/sb_snowboard.dir/snowboard/postmortem.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/postmortem.cc.o.d"
  "CMakeFiles/sb_snowboard.dir/snowboard/profile.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/profile.cc.o.d"
  "CMakeFiles/sb_snowboard.dir/snowboard/replay.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/replay.cc.o.d"
  "CMakeFiles/sb_snowboard.dir/snowboard/report.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/report.cc.o.d"
  "CMakeFiles/sb_snowboard.dir/snowboard/select.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/select.cc.o.d"
  "CMakeFiles/sb_snowboard.dir/snowboard/serialize.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/serialize.cc.o.d"
  "CMakeFiles/sb_snowboard.dir/snowboard/stats.cc.o"
  "CMakeFiles/sb_snowboard.dir/snowboard/stats.cc.o.d"
  "libsb_snowboard.a"
  "libsb_snowboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_snowboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
