file(REMOVE_RECURSE
  "libsb_snowboard.a"
)
