# Empty dependencies file for sb_snowboard.
# This may be replaced when dependencies are built.
