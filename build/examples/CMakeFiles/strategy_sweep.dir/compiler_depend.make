# Empty compiler generated dependencies file for strategy_sweep.
# This may be replaced when dependencies are built.
