file(REMOVE_RECURSE
  "CMakeFiles/strategy_sweep.dir/strategy_sweep.cc.o"
  "CMakeFiles/strategy_sweep.dir/strategy_sweep.cc.o.d"
  "strategy_sweep"
  "strategy_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
