# Empty dependencies file for l2tp_bug_hunt.
# This may be replaced when dependencies are built.
