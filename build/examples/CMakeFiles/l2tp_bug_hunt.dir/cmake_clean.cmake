file(REMOVE_RECURSE
  "CMakeFiles/l2tp_bug_hunt.dir/l2tp_bug_hunt.cc.o"
  "CMakeFiles/l2tp_bug_hunt.dir/l2tp_bug_hunt.cc.o.d"
  "l2tp_bug_hunt"
  "l2tp_bug_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2tp_bug_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
