# Empty dependencies file for race_detector_demo.
# This may be replaced when dependencies are built.
