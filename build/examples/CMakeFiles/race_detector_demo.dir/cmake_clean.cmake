file(REMOVE_RECURSE
  "CMakeFiles/race_detector_demo.dir/race_detector_demo.cc.o"
  "CMakeFiles/race_detector_demo.dir/race_detector_demo.cc.o.d"
  "race_detector_demo"
  "race_detector_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_detector_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
