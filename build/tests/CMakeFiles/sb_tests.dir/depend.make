# Empty dependencies file for sb_tests.
# This may be replaced when dependencies are built.
