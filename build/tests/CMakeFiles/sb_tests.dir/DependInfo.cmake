
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bug_repro_test.cc" "tests/CMakeFiles/sb_tests.dir/bug_repro_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/bug_repro_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/sb_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/detectors_test.cc" "tests/CMakeFiles/sb_tests.dir/detectors_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/detectors_test.cc.o.d"
  "/root/repo/tests/engine_property_test.cc" "tests/CMakeFiles/sb_tests.dir/engine_property_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/engine_property_test.cc.o.d"
  "/root/repo/tests/explorer_test.cc" "tests/CMakeFiles/sb_tests.dir/explorer_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/explorer_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/sb_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/kernel_core_test.cc" "tests/CMakeFiles/sb_tests.dir/kernel_core_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/kernel_core_test.cc.o.d"
  "/root/repo/tests/kernel_edge_test.cc" "tests/CMakeFiles/sb_tests.dir/kernel_edge_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/kernel_edge_test.cc.o.d"
  "/root/repo/tests/kernel_fs_test.cc" "tests/CMakeFiles/sb_tests.dir/kernel_fs_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/kernel_fs_test.cc.o.d"
  "/root/repo/tests/kernel_misc_test.cc" "tests/CMakeFiles/sb_tests.dir/kernel_misc_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/kernel_misc_test.cc.o.d"
  "/root/repo/tests/kernel_net_test.cc" "tests/CMakeFiles/sb_tests.dir/kernel_net_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/kernel_net_test.cc.o.d"
  "/root/repo/tests/kernel_rhashtable_test.cc" "tests/CMakeFiles/sb_tests.dir/kernel_rhashtable_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/kernel_rhashtable_test.cc.o.d"
  "/root/repo/tests/kernel_syscall_test.cc" "tests/CMakeFiles/sb_tests.dir/kernel_syscall_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/kernel_syscall_test.cc.o.d"
  "/root/repo/tests/pipeline_edge_test.cc" "tests/CMakeFiles/sb_tests.dir/pipeline_edge_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/pipeline_edge_test.cc.o.d"
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/sb_tests.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/pipeline_test.cc.o.d"
  "/root/repo/tests/pmc_test.cc" "tests/CMakeFiles/sb_tests.dir/pmc_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/pmc_test.cc.o.d"
  "/root/repo/tests/postmortem_test.cc" "tests/CMakeFiles/sb_tests.dir/postmortem_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/postmortem_test.cc.o.d"
  "/root/repo/tests/profile_test.cc" "tests/CMakeFiles/sb_tests.dir/profile_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/profile_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/sb_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/replay_test.cc" "tests/CMakeFiles/sb_tests.dir/replay_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/replay_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/sb_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/seed_program_test.cc" "tests/CMakeFiles/sb_tests.dir/seed_program_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/seed_program_test.cc.o.d"
  "/root/repo/tests/select_test.cc" "tests/CMakeFiles/sb_tests.dir/select_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/select_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/sb_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/sim_engine_test.cc" "tests/CMakeFiles/sb_tests.dir/sim_engine_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/sim_engine_test.cc.o.d"
  "/root/repo/tests/sim_liveness_test.cc" "tests/CMakeFiles/sb_tests.dir/sim_liveness_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/sim_liveness_test.cc.o.d"
  "/root/repo/tests/sim_memory_test.cc" "tests/CMakeFiles/sb_tests.dir/sim_memory_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/sim_memory_test.cc.o.d"
  "/root/repo/tests/sim_sync_test.cc" "tests/CMakeFiles/sb_tests.dir/sim_sync_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/sim_sync_test.cc.o.d"
  "/root/repo/tests/ski_test.cc" "tests/CMakeFiles/sb_tests.dir/ski_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/ski_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/sb_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/sb_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/sync_property_test.cc" "tests/CMakeFiles/sb_tests.dir/sync_property_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/sync_property_test.cc.o.d"
  "/root/repo/tests/three_thread_test.cc" "tests/CMakeFiles/sb_tests.dir/three_thread_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/three_thread_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/sb_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/sb_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sb_ski.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sb_snowboard.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sb_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sb_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
