# Empty dependencies file for bench_perf_interleavings.
# This may be replaced when dependencies are built.
