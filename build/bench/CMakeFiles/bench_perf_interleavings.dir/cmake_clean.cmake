file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_interleavings.dir/bench_perf_interleavings.cc.o"
  "CMakeFiles/bench_perf_interleavings.dir/bench_perf_interleavings.cc.o.d"
  "bench_perf_interleavings"
  "bench_perf_interleavings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_interleavings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
