# Empty dependencies file for bench_pmc_accuracy.
# This may be replaced when dependencies are built.
