file(REMOVE_RECURSE
  "CMakeFiles/bench_pmc_accuracy.dir/bench_pmc_accuracy.cc.o"
  "CMakeFiles/bench_pmc_accuracy.dir/bench_pmc_accuracy.cc.o.d"
  "bench_pmc_accuracy"
  "bench_pmc_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pmc_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
