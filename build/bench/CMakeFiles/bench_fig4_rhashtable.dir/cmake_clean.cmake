file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_rhashtable.dir/bench_fig4_rhashtable.cc.o"
  "CMakeFiles/bench_fig4_rhashtable.dir/bench_fig4_rhashtable.cc.o.d"
  "bench_fig4_rhashtable"
  "bench_fig4_rhashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_rhashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
