# Empty compiler generated dependencies file for bench_fig4_rhashtable.
# This may be replaced when dependencies are built.
