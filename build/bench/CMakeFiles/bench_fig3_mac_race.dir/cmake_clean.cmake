file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mac_race.dir/bench_fig3_mac_race.cc.o"
  "CMakeFiles/bench_fig3_mac_race.dir/bench_fig3_mac_race.cc.o.d"
  "bench_fig3_mac_race"
  "bench_fig3_mac_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mac_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
