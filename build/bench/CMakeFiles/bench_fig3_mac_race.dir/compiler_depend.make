# Empty compiler generated dependencies file for bench_fig3_mac_race.
# This may be replaced when dependencies are built.
