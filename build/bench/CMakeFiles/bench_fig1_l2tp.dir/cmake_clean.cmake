file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_l2tp.dir/bench_fig1_l2tp.cc.o"
  "CMakeFiles/bench_fig1_l2tp.dir/bench_fig1_l2tp.cc.o.d"
  "bench_fig1_l2tp"
  "bench_fig1_l2tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_l2tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
