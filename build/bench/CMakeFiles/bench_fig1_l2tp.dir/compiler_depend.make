# Empty compiler generated dependencies file for bench_fig1_l2tp.
# This may be replaced when dependencies are built.
