# Empty compiler generated dependencies file for bench_table2_bug_finding.
# This may be replaced when dependencies are built.
