file(REMOVE_RECURSE
  "CMakeFiles/snowboard_cli.dir/snowboard_cli.cc.o"
  "CMakeFiles/snowboard_cli.dir/snowboard_cli.cc.o.d"
  "snowboard_cli"
  "snowboard_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snowboard_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
