# Empty compiler generated dependencies file for snowboard_cli.
# This may be replaced when dependencies are built.
