#!/bin/sh
# Smoke test for snowboard_cli's argument surface: --help must print the full flag
# reference and exit 0; unknown commands, unknown flags, and stray positionals must exit 2
# (the CLI used to silently accept unknown flags and exit 0 — this keeps that regression
# dead). Pass the CLI binary path as $1; optionally pass the replay-token corpus directory
# (tests/corpus) as $2 to exercise `replay` end to end (success, divergence exit 3).
set -u

CLI="${1:?usage: cli_smoke_test.sh /path/to/snowboard_cli [corpus-dir]}"
CORPUS="${2:-}"
fails=0

check_exit() {
  desc="$1"; want="$2"; got="$3"
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: exit $got, want $want"
    fails=$((fails + 1))
  else
    echo "ok: $desc (exit $got)"
  fi
}

help_out=$("$CLI" --help 2>&1); check_exit "--help exits 0" 0 $?
for needle in corpus identify run campaign replay strategies \
    --trace-out --report-dir --checkpoint-dir --resume --inject-faults --fault-seed \
    --strategy --budget --trials --workers --seed --token --tokens-dir; do
  case "$help_out" in
    *"$needle"*) ;;
    *) echo "FAIL: --help output missing '$needle'"; fails=$((fails + 1)) ;;
  esac
done

"$CLI" -h > /dev/null 2>&1; check_exit "-h exits 0" 0 $?
"$CLI" help > /dev/null 2>&1; check_exit "help command exits 0" 0 $?
"$CLI" campaign --help > /dev/null 2>&1; check_exit "campaign --help exits 0" 0 $?
"$CLI" strategies > /dev/null 2>&1; check_exit "strategies exits 0" 0 $?

"$CLI" > /dev/null 2>&1; check_exit "no command exits 2" 2 $?
"$CLI" frobnicate > /dev/null 2>&1; check_exit "unknown command exits 2" 2 $?
"$CLI" campaign --no-such-flag > /dev/null 2>&1; check_exit "unknown flag exits 2" 2 $?
"$CLI" campaign stray-positional > /dev/null 2>&1; check_exit "positional arg exits 2" 2 $?
"$CLI" campaign --resume extra > /dev/null 2>&1; check_exit "value on boolean flag exits 2" 2 $?
"$CLI" campaign --resume > /dev/null 2>&1; check_exit "--resume without dir exits 2" 2 $?
"$CLI" run --strategy NOPE --corpus /dev/null --pmcs /dev/null > /dev/null 2>&1
check_exit "unknown strategy exits 2" 2 $?
"$CLI" corpus > /dev/null 2>&1; check_exit "corpus without --out exits 2" 2 $?

# --- replay: usage errors need no corpus. ---
"$CLI" replay > /dev/null 2>&1; check_exit "replay without token exits 2" 2 $?
"$CLI" replay /nonexistent/path.token > /dev/null 2>&1
check_exit "replay with unreadable file exits 1" 1 $?
"$CLI" replay sb-replay-v1-garbage > /dev/null 2>&1
check_exit "replay with malformed token exits 2" 2 $?
bad_token="${TMPDIR:-/tmp}/cli_smoke_bad.$$.token"
echo "complete garbage, not a token" > "$bad_token"
"$CLI" replay "$bad_token" > /dev/null 2>&1
check_exit "replay with junk token file exits 2" 2 $?
rm -f "$bad_token"

# --- replay against the checked-in corpus: success and divergence paths. ---
if [ -n "$CORPUS" ] && [ -d "$CORPUS" ]; then
  good_token=$(ls "$CORPUS"/issue-*.token 2>/dev/null | head -n 1)
  if [ -n "$good_token" ]; then
    "$CLI" replay "$good_token" > /dev/null 2>&1
    check_exit "replay of a corpus token exits 0" 0 $?
    "$CLI" replay --token "$good_token" > /dev/null 2>&1
    check_exit "replay via --token exits 0" 0 $?
    "$CLI" replay "$good_token" --token "$good_token" > /dev/null 2>&1
    check_exit "replay with both operand and --token exits 2" 2 $?
  else
    echo "FAIL: no issue-*.token under $CORPUS"; fails=$((fails + 1))
  fi
  if [ -f "$CORPUS/divergent.token" ]; then
    "$CLI" replay "$CORPUS/divergent.token" > /dev/null 2>&1
    check_exit "replay fingerprint divergence exits 3" 3 $?
  else
    echo "FAIL: no divergent.token under $CORPUS"; fails=$((fails + 1))
  fi
else
  echo "note: no corpus dir supplied; skipping replay end-to-end checks"
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails smoke check(s) failed"
  exit 1
fi
echo "all CLI smoke checks passed"
