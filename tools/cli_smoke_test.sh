#!/bin/sh
# Smoke test for snowboard_cli's argument surface: --help must print the full flag
# reference and exit 0; unknown commands, unknown flags, and stray positionals must exit 2
# (the CLI used to silently accept unknown flags and exit 0 — this keeps that regression
# dead). Pass the CLI binary path as $1.
set -u

CLI="${1:?usage: cli_smoke_test.sh /path/to/snowboard_cli}"
fails=0

check_exit() {
  desc="$1"; want="$2"; got="$3"
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: exit $got, want $want"
    fails=$((fails + 1))
  else
    echo "ok: $desc (exit $got)"
  fi
}

help_out=$("$CLI" --help 2>&1); check_exit "--help exits 0" 0 $?
for needle in corpus identify run campaign strategies \
    --trace-out --report-dir --checkpoint-dir --resume --inject-faults --fault-seed \
    --strategy --budget --trials --workers --seed; do
  case "$help_out" in
    *"$needle"*) ;;
    *) echo "FAIL: --help output missing '$needle'"; fails=$((fails + 1)) ;;
  esac
done

"$CLI" -h > /dev/null 2>&1; check_exit "-h exits 0" 0 $?
"$CLI" help > /dev/null 2>&1; check_exit "help command exits 0" 0 $?
"$CLI" campaign --help > /dev/null 2>&1; check_exit "campaign --help exits 0" 0 $?
"$CLI" strategies > /dev/null 2>&1; check_exit "strategies exits 0" 0 $?

"$CLI" > /dev/null 2>&1; check_exit "no command exits 2" 2 $?
"$CLI" frobnicate > /dev/null 2>&1; check_exit "unknown command exits 2" 2 $?
"$CLI" campaign --no-such-flag > /dev/null 2>&1; check_exit "unknown flag exits 2" 2 $?
"$CLI" campaign stray-positional > /dev/null 2>&1; check_exit "positional arg exits 2" 2 $?
"$CLI" campaign --resume extra > /dev/null 2>&1; check_exit "value on boolean flag exits 2" 2 $?
"$CLI" campaign --resume > /dev/null 2>&1; check_exit "--resume without dir exits 2" 2 $?
"$CLI" run --strategy NOPE --corpus /dev/null --pmcs /dev/null > /dev/null 2>&1
check_exit "unknown strategy exits 2" 2 $?
"$CLI" corpus > /dev/null 2>&1; check_exit "corpus without --out exits 2" 2 $?

if [ "$fails" -ne 0 ]; then
  echo "$fails smoke check(s) failed"
  exit 1
fi
echo "all CLI smoke checks passed"
