#!/usr/bin/env python3
"""Doc-drift gate: fails when the code and the documentation disagree.

Checks, each a one-way inclusion the fast CI lane enforces:
  1. Every --flag defined in tools/snowboard_cli.cc appears somewhere in README.md.
  2. Every tests/*_test.cc file is registered in tests/CMakeLists.txt (a test file that
     exists but never builds is silently dead coverage).
  3. Every bench/bench_*.cc file is registered in bench/CMakeLists.txt (same dead-coverage
     hazard as tests: an unregistered bench silently stops building).

Usage: check_docs.py [repo_root]   (default: parent of this script's directory)
"""

import pathlib
import re
import sys


def cli_flags(cli_source: str) -> set:
    """Flags the CLI accepts: entries of the per-command FlagInfo tables.

    Matching the table entries (rather than every "--word" in the file) keeps prose like
    "--key value" in comments from being treated as a flag definition.
    """
    # A FlagInfo row is {"name", VALUE_NAME, "help"} where VALUE_NAME is nullptr or an
    # all-caps placeholder ("FILE", "[N]"); CommandInfo rows carry a lowercase summary
    # there and StrategyTable names are uppercase, so neither matches.
    return set(re.findall(r'^\s*\{"([a-z][a-z0-9-]*)",\s*(?:nullptr|"\[?[A-Z]+\]?")',
                          cli_source, re.MULTILINE))


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else
                        pathlib.Path(__file__).resolve().parent.parent)
    errors = []

    cli = (root / "tools" / "snowboard_cli.cc").read_text()
    readme = (root / "README.md").read_text()
    for flag in sorted(cli_flags(cli)):
        if f"--{flag}" not in readme:
            errors.append(f"README.md does not document snowboard_cli flag --{flag}")

    tests_cmake = (root / "tests" / "CMakeLists.txt").read_text()
    for test_file in sorted((root / "tests").glob("*_test.cc")):
        if test_file.name not in tests_cmake:
            errors.append(f"tests/CMakeLists.txt does not register {test_file.name}")

    bench_cmake = (root / "bench" / "CMakeLists.txt").read_text()
    for bench_file in sorted((root / "bench").glob("bench_*.cc")):
        if f"sb_bench({bench_file.stem})" not in bench_cmake:
            errors.append(f"bench/CMakeLists.txt does not register {bench_file.name}")

    if errors:
        for error in errors:
            print(f"check_docs: {error}", file=sys.stderr)
        print(f"check_docs: {len(errors)} doc-drift error(s)", file=sys.stderr)
        return 1
    print("check_docs: CLI flags documented, test and bench files registered; no drift")
    return 0


if __name__ == "__main__":
    sys.exit(main())
