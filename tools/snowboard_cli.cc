// snowboard_cli — drive the pipeline from the command line, stage by stage or end to end.
//
// The stages mirror the paper's deployment (Figure 2): a fuzzing job builds a corpus; an
// identification job profiles it and emits the PMC database; test workers consume generated
// concurrent tests. Artifacts travel through the serialize.h text formats, so stages can run
// in separate invocations (or be inspected/edited in between).
//
// Run `snowboard_cli --help` for the full command and flag reference; the usage text below
// is generated from the same per-command flag tables that argument validation uses, so the
// two cannot drift apart. Any unknown command, unknown flag, or stray positional argument
// exits with status 2 after pointing at --help.
//
// Crash safety: with --checkpoint-dir, every stage commits its artifact on completion and
// execution journals per-test outcomes; after a crash (real or injected), rerunning with
// --resume replays the journal and recomputes only what was lost, yielding the identical
// result. --inject-faults N kills the campaign with probability 1/N at each fault point
// (N=1: die at the very first one); an injected death exits with status 42.
//
// Observability: --trace-out FILE (run/campaign) records a Chrome trace_event JSON stream
// (open in about:tracing or https://ui.perfetto.dev); --report-dir DIR (campaign) writes
// report.json + report.html summarizing the funnel, stage timings, and findings.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "src/snowboard/pipeline.h"
#include "src/snowboard/report_html.h"
#include "src/snowboard/serialize.h"
#include "src/util/fault.h"
#include "src/util/fs.h"
#include "src/util/log.h"
#include "src/util/strings.h"
#include "src/util/trace.h"

namespace snowboard {
namespace {

// One flag a command accepts. `value_name` is nullptr for valueless flags (--resume);
// "[N]" style names mark flags whose value is optional (--inject-faults).
struct FlagInfo {
  const char* name;        // Without the leading "--".
  const char* value_name;  // nullptr = boolean flag.
  const char* help;
};

struct CommandInfo {
  const char* name;
  const char* summary;
  const FlagInfo* flags;
  size_t num_flags;
};

constexpr FlagInfo kCorpusFlags[] = {
    {"out", "FILE", "where to write the corpus (required)"},
    {"size", "N", "target corpus size (default 80)"},
    {"iters", "N", "fuzzing iterations (default 300)"},
    {"seed", "S", "fuzzing seed (default 42)"},
};

constexpr FlagInfo kIdentifyFlags[] = {
    {"corpus", "FILE", "corpus file from `corpus` (required)"},
    {"out", "FILE", "where to write the PMC database (required)"},
};

constexpr FlagInfo kRunFlags[] = {
    {"corpus", "FILE", "corpus file from `corpus` (required)"},
    {"pmcs", "FILE", "PMC database from `identify` (required)"},
    {"strategy", "NAME", "clustering strategy (default S-INS-PAIR; see `strategies`)"},
    {"budget", "N", "max concurrent tests to generate (default 300)"},
    {"trials", "N", "trials per concurrent test (default 24)"},
    {"workers", "N", "execution worker threads (default 4)"},
    {"seed", "S", "selection/exploration seed (default 1)"},
    {"trace-out", "FILE", "write a Chrome trace_event JSON of the run"},
};

constexpr FlagInfo kCampaignFlags[] = {
    {"strategy", "NAME", "clustering strategy (default S-INS-PAIR; see `strategies`)"},
    {"budget", "N", "max concurrent tests to generate (default 300)"},
    {"trials", "N", "trials per concurrent test (default 24)"},
    {"workers", "N", "worker threads for every parallel stage (default 4)"},
    {"no-stream", nullptr, "run stages as strict barriers instead of streaming"},
    {"seed", "S", "campaign seed (default 1)"},
    {"corpus-size", "N", "target corpus size (default 80)"},
    {"corpus-iters", "N", "fuzzing iterations (default 300)"},
    {"checkpoint-dir", "DIR", "commit stage artifacts + per-test journal here"},
    {"resume", nullptr, "resume from --checkpoint-dir instead of recomputing"},
    {"inject-faults", "[N]", "crash with chance 1/N at each fault point (bare: first)"},
    {"fault-seed", "S", "fault-injection seed (default 1)"},
    {"trace-out", "FILE", "write a Chrome trace_event JSON of the campaign"},
    {"report-dir", "DIR", "write report.json + report.html for the campaign"},
    {"tokens-dir", "DIR", "write each finding's replay token to DIR/issue-<id>.token"},
};

constexpr FlagInfo kReplayFlags[] = {
    {"token", "FILE", "read the replay token from FILE (alternative to the operand)"},
};

constexpr CommandInfo kCommands[] = {
    {"corpus", "fuzz a corpus of sequential tests", kCorpusFlags,
     sizeof(kCorpusFlags) / sizeof(kCorpusFlags[0])},
    {"identify", "profile a corpus and emit the PMC database", kIdentifyFlags,
     sizeof(kIdentifyFlags) / sizeof(kIdentifyFlags[0])},
    {"run", "cluster, select, and execute concurrent tests from saved artifacts", kRunFlags,
     sizeof(kRunFlags) / sizeof(kRunFlags[0])},
    {"campaign", "run the whole pipeline end to end", kCampaignFlags,
     sizeof(kCampaignFlags) / sizeof(kCampaignFlags[0])},
    {"replay", "re-execute a finding's replay token and verify its fingerprint",
     kReplayFlags, sizeof(kReplayFlags) / sizeof(kReplayFlags[0])},
    {"strategies", "list the clustering strategies", nullptr, 0},
};

void PrintUsage(std::FILE* out) {
  std::fprintf(out, "usage: snowboard_cli <command> [--flag value]...\n");
  std::fprintf(out, "       snowboard_cli replay <token-or-file>\n");
  std::fprintf(out, "       snowboard_cli --help\n\ncommands:\n");
  for (const CommandInfo& cmd : kCommands) {
    std::fprintf(out, "  %-11s %s\n", cmd.name, cmd.summary);
    for (size_t i = 0; i < cmd.num_flags; i++) {
      const FlagInfo& flag = cmd.flags[i];
      std::string left = std::string("--") + flag.name;
      if (flag.value_name != nullptr) {
        left += std::string(" ") + flag.value_name;
      }
      std::fprintf(out, "    %-24s %s\n", left.c_str(), flag.help);
    }
  }
  std::fprintf(out,
               "\nexit status: 0 success; 1 I/O or input error; 2 usage error; "
               "3 replay fingerprint divergence; 42 injected crash (rerun with "
               "--resume).\n");
}

const CommandInfo* FindCommand(const std::string& name) {
  for (const CommandInfo& cmd : kCommands) {
    if (name == cmd.name) {
      return &cmd;
    }
  }
  return nullptr;
}

struct Args {
  std::map<std::string, std::string> values;

  const char* Get(const std::string& key, const char* fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second.c_str();
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atol(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values.count(key) != 0; }
};

// Parses and validates against the command's flag table: unknown flags and stray
// positional arguments are usage errors (the old parser silently accepted both).
bool ParseArgs(int argc, char** argv, int first, const CommandInfo& cmd, Args* args) {
  for (int i = first; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "snowboard_cli %s: unexpected argument '%s'\n", cmd.name, arg);
      return false;
    }
    std::string key = arg + 2;
    const FlagInfo* flag = nullptr;
    for (size_t f = 0; f < cmd.num_flags; f++) {
      if (key == cmd.flags[f].name) {
        flag = &cmd.flags[f];
        break;
      }
    }
    if (flag == nullptr) {
      std::fprintf(stderr, "snowboard_cli %s: unknown flag --%s\n", cmd.name, key.c_str());
      return false;
    }
    // A flag followed by another flag (or nothing) is valueless: stored as "1"
    // (--resume; bare --inject-faults means "crash at the first fault point").
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      args->values[key] = "1";
    } else if (flag->value_name == nullptr) {
      std::fprintf(stderr, "snowboard_cli %s: flag --%s takes no value\n", cmd.name,
                   key.c_str());
      return false;
    } else {
      args->values[key] = argv[++i];
    }
  }
  return true;
}

const std::map<std::string, Strategy>& StrategyTable() {
  static const std::map<std::string, Strategy>* table = new std::map<std::string, Strategy>{
      {"S-FULL", Strategy::kSFull},
      {"S-CH", Strategy::kSCh},
      {"S-CH-NULL", Strategy::kSChNull},
      {"S-CH-UNALIGNED", Strategy::kSChUnaligned},
      {"S-CH-DOUBLE", Strategy::kSChDouble},
      {"S-INS", Strategy::kSIns},
      {"S-INS-PAIR", Strategy::kSInsPair},
      {"S-MEM", Strategy::kSMem},
      {"RANDOM-S-INS-PAIR", Strategy::kRandomSInsPair},
      {"RANDOM-PAIRING", Strategy::kRandomPairing},
      {"DUPLICATE-PAIRING", Strategy::kDuplicatePairing},
  };
  return *table;
}

// RAII tracing session bound to --trace-out: starts the tracer when a path is given and
// writes the merged trace on the way out (normal return, error, or injected crash alike).
class TraceSession {
 public:
  explicit TraceSession(const char* path) : path_(path == nullptr ? "" : path) {
    if (!path_.empty()) {
      Tracer::Global().Start();
    }
  }
  ~TraceSession() {
    if (path_.empty()) {
      return;
    }
    Tracer::Global().Stop();
    if (!Tracer::Global().WriteChromeTrace(path_)) {
      std::fprintf(stderr, "warning: cannot write trace to %s\n", path_.c_str());
    } else {
      std::printf("trace written to %s\n", path_.c_str());
    }
  }

 private:
  std::string path_;
};

int CmdStrategies() {
  for (const auto& [name, strategy] : StrategyTable()) {
    std::printf("%-20s %s\n", name.c_str(),
                StrategyUsesPmcs(strategy) ? "(PMC clustering)" : "(baseline)");
  }
  return 0;
}

int CmdCorpus(const Args& args) {
  const char* out = args.Get("out", nullptr);
  if (out == nullptr) {
    std::fprintf(stderr, "corpus: --out is required\n");
    return 2;
  }
  KernelVm vm;
  CorpusOptions options;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  options.target_size = static_cast<int>(args.GetInt("size", 80));
  options.max_iterations = static_cast<int>(args.GetInt("iters", 300));
  std::vector<Program> corpus = CorpusPrograms(BuildCorpus(vm, options));
  if (!WriteStringToFile(out, SerializeCorpus(corpus))) {
    std::fprintf(stderr, "corpus: cannot write %s\n", out);
    return 1;
  }
  std::printf("wrote %zu sequential tests to %s\n", corpus.size(), out);
  return 0;
}

int CmdIdentify(const Args& args) {
  const char* corpus_path = args.Get("corpus", nullptr);
  const char* out = args.Get("out", nullptr);
  if (corpus_path == nullptr || out == nullptr) {
    std::fprintf(stderr, "identify: --corpus and --out are required\n");
    return 2;
  }
  std::optional<std::string> text = ReadFileToString(corpus_path);
  if (!text.has_value()) {
    std::fprintf(stderr, "identify: cannot read %s\n", corpus_path);
    return 1;
  }
  std::optional<std::vector<Program>> corpus = DeserializeCorpus(*text);
  if (!corpus.has_value()) {
    std::fprintf(stderr, "identify: %s is not a corpus file\n", corpus_path);
    return 1;
  }
  KernelVm vm;
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, *corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  if (!WriteStringToFile(out, SerializePmcs(pmcs))) {
    std::fprintf(stderr, "identify: cannot write %s\n", out);
    return 1;
  }
  uint64_t pairs = 0;
  for (const Pmc& pmc : pmcs) {
    pairs += pmc.total_pairs;
  }
  std::printf("profiled %zu tests; wrote %zu PMCs (%llu test pairs) to %s\n",
              corpus->size(), pmcs.size(), static_cast<unsigned long long>(pairs), out);
  return 0;
}

void PrintResult(const PipelineResult& result) {
  std::printf("tests executed: %zu (%llu trials); with findings: %zu; channel exercised: "
              "%zu\n",
              result.tests_executed, static_cast<unsigned long long>(result.total_trials),
              result.tests_with_bug, result.channel_exercised);
  std::printf("findings:\n%s", result.findings.Summarize().c_str());
}

int CmdRun(const Args& args) {
  const char* corpus_path = args.Get("corpus", nullptr);
  const char* pmcs_path = args.Get("pmcs", nullptr);
  if (corpus_path == nullptr || pmcs_path == nullptr) {
    std::fprintf(stderr, "run: --corpus and --pmcs are required\n");
    return 2;
  }
  // Usage errors before I/O errors: a bad strategy name is status 2 even if the input
  // files are also unreadable.
  auto strategy_it = StrategyTable().find(args.Get("strategy", "S-INS-PAIR"));
  if (strategy_it == StrategyTable().end()) {
    std::fprintf(stderr, "run: unknown strategy (see `snowboard_cli strategies`)\n");
    return 2;
  }
  std::optional<std::string> corpus_text = ReadFileToString(corpus_path);
  std::optional<std::string> pmcs_text = ReadFileToString(pmcs_path);
  if (!corpus_text.has_value() || !pmcs_text.has_value()) {
    std::fprintf(stderr, "run: cannot read input files\n");
    return 1;
  }
  std::optional<std::vector<Program>> corpus = DeserializeCorpus(*corpus_text);
  std::optional<std::vector<Pmc>> pmcs = DeserializePmcs(*pmcs_text);
  if (!corpus.has_value() || !pmcs.has_value()) {
    std::fprintf(stderr, "run: malformed input files\n");
    return 1;
  }

  TraceSession trace(args.Get("trace-out", nullptr));
  PreparedCampaign campaign;
  campaign.corpus = *corpus;
  campaign.pmcs = *pmcs;
  PipelineOptions options;
  options.strategy = strategy_it->second;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  options.max_concurrent_tests = static_cast<size_t>(args.GetInt("budget", 300));
  options.explorer.num_trials = static_cast<int>(args.GetInt("trials", 24));
  options.num_workers = static_cast<int>(args.GetInt("workers", 4));

  size_t clusters = 0;
  std::vector<ConcurrentTest> tests = GenerateTestsForStrategy(campaign, options, &clusters);
  std::printf("%s: %zu clusters -> %zu concurrent tests\n", StrategyName(options.strategy),
              clusters, tests.size());
  PmcMatcher matcher(&campaign.pmcs);
  PipelineResult result;
  ExecuteCampaign(tests, StrategyUsesPmcs(options.strategy),
                  StrategyUsesPmcs(options.strategy) ? &matcher : nullptr, options, &result);
  PrintResult(result);
  return 0;
}

// `operand` is the positional argument of `snowboard_cli replay <token-or-file>`: a
// literal token when it starts with the token header, otherwise a path to a token file.
int CmdReplay(const Args& args, const char* operand) {
  const char* token_file = args.Get("token", nullptr);
  if ((operand == nullptr) == (token_file == nullptr)) {
    std::fprintf(stderr, "replay: provide exactly one of <token-or-file> or --token FILE\n");
    return 2;
  }
  std::string text;
  if (operand != nullptr && std::strncmp(operand, "sb-replay-", 10) == 0) {
    text = operand;
  } else {
    const char* path = operand != nullptr ? operand : token_file;
    std::optional<std::string> contents = ReadFileToString(path);
    if (!contents.has_value()) {
      std::fprintf(stderr, "replay: cannot read %s\n", path);
      return 1;
    }
    text = *contents;
  }
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r' ||
                           text.back() == ' ' || text.back() == '\t')) {
    text.pop_back();
  }
  std::optional<ReplayToken> token = ParseReplayToken(text);
  if (!token.has_value()) {
    std::fprintf(stderr, "replay: not a valid replay token (corrupt or truncated?)\n");
    return 2;
  }
  std::printf("replaying issue #%d (tests %d/%d, %zu recorded decisions, %zu switches)\n",
              token->issue_id, token->write_test, token->read_test,
              token->schedule.switch_after.size(), token->schedule.SwitchCount());
  KernelVm vm;
  ReplayVerdict verdict = ReplayTokenTrial(vm, *token);
  std::printf("detectors: %zu race(s), %zu console hit(s)%s\n", verdict.detectors.races.size(),
              verdict.detectors.console_hits.size(),
              verdict.detectors.panicked ? ", panicked" : "");
  if (verdict.fingerprint_match) {
    std::printf("fingerprint %016llx matches: finding reproduced\n",
                static_cast<unsigned long long>(verdict.fingerprint));
    return 0;
  }
  std::fprintf(stderr, "replay: fingerprint DIVERGED: expected %016llx, observed %016llx\n",
               static_cast<unsigned long long>(token->fingerprint),
               static_cast<unsigned long long>(verdict.fingerprint));
  return 3;
}

int CmdCampaign(const Args& args) {
  auto strategy_it = StrategyTable().find(args.Get("strategy", "S-INS-PAIR"));
  if (strategy_it == StrategyTable().end()) {
    std::fprintf(stderr, "campaign: unknown strategy (see `snowboard_cli strategies`)\n");
    return 2;
  }
  PipelineOptions options;
  options.strategy = strategy_it->second;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  options.corpus.seed = static_cast<uint64_t>(args.GetInt("seed", 1)) * 41 + 1;
  options.corpus.target_size = static_cast<int>(args.GetInt("corpus-size", 80));
  options.corpus.max_iterations = static_cast<int>(args.GetInt("corpus-iters", 300));
  options.max_concurrent_tests = static_cast<size_t>(args.GetInt("budget", 300));
  options.explorer.num_trials = static_cast<int>(args.GetInt("trials", 24));
  options.num_workers = static_cast<int>(args.GetInt("workers", 4));
  options.streaming = !args.Has("no-stream");
  options.checkpoint_dir = args.Get("checkpoint-dir", "");
  options.resume = args.Has("resume");
  if (options.resume && options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "campaign: --resume requires --checkpoint-dir\n");
    return 2;
  }

  FaultInjector::Plan plan;
  if (args.Has("inject-faults")) {
    plan.seed = static_cast<uint64_t>(args.GetInt("fault-seed", 1));
    long chance = args.GetInt("inject-faults", 1);
    if (chance <= 1) {
      plan.crash_at = 0;  // Bare flag: die at the very first fault point.
    } else {
      plan.crash_chance = static_cast<uint32_t>(chance);
    }
  }
  FaultInjector fault(plan);
  if (args.Has("inject-faults")) {
    options.fault = &fault;
  }

  TraceSession trace(args.Get("trace-out", nullptr));
  PipelineResult result = RunSnowboardPipeline(options);
  if (options.fault != nullptr && options.fault->crashed()) {
    std::fprintf(stderr,
                 "campaign: injected crash at fault point %lld (%s); state is in %s -- "
                 "rerun with --resume to continue\n",
                 static_cast<long long>(options.fault->crash_point()),
                 options.fault->crash_site().c_str(),
                 options.checkpoint_dir.empty() ? "(no checkpoint dir!)"
                                                : options.checkpoint_dir.c_str());
    return 42;
  }
  std::printf("%s: corpus=%zu pmcs=%zu clusters=%zu\n", StrategyName(options.strategy),
              result.corpus_size, result.pmc_count, result.cluster_count);
  if (result.tests_resumed > 0) {
    std::printf("resumed %zu of %zu test outcomes from the checkpoint journal\n",
                result.tests_resumed, result.tests_executed);
  }
  PrintResult(result);

  const char* report_dir = args.Get("report-dir", nullptr);
  if (report_dir != nullptr) {
    CampaignReport report = BuildCampaignReport(options, result);
    if (!WriteCampaignReport(report, report_dir)) {
      std::fprintf(stderr, "campaign: cannot write report to %s\n", report_dir);
      return 1;
    }
    std::printf("report written to %s/report.html (+ report.json)\n", report_dir);
  }

  const char* tokens_dir = args.Get("tokens-dir", nullptr);
  if (tokens_dir != nullptr) {
    if (!EnsureDirectory(tokens_dir)) {
      std::fprintf(stderr, "campaign: cannot create %s\n", tokens_dir);
      return 1;
    }
    size_t written = 0;
    for (const auto& [issue_id, finding] : result.findings.first_findings()) {
      if (finding.replay_token.empty()) {
        continue;
      }
      std::string path = std::string(tokens_dir) + StrPrintf("/issue-%d.token", issue_id);
      if (!WriteStringToFile(path, finding.replay_token + "\n")) {
        std::fprintf(stderr, "campaign: cannot write %s\n", path.c_str());
        return 1;
      }
      written++;
    }
    std::printf("wrote %zu replay token(s) to %s\n", written, tokens_dir);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stderr);
    return 2;
  }
  // --help anywhere on the line wins (including after a command), before any validation.
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    }
  }
  std::string command = argv[1];
  if (command == "help") {
    PrintUsage(stdout);
    return 0;
  }
  const CommandInfo* cmd = FindCommand(command);
  if (cmd == nullptr) {
    std::fprintf(stderr, "snowboard_cli: unknown command '%s' (try --help)\n",
                 command.c_str());
    return 2;
  }
  SetLogLevel(LogLevel::kInfo);
  // `replay` takes one positional operand (the token, or a file holding it); every other
  // command is flags-only.
  const char* replay_operand = nullptr;
  int first_flag = 2;
  if (command == "replay" && argc >= 3 && std::strncmp(argv[2], "--", 2) != 0) {
    replay_operand = argv[2];
    first_flag = 3;
  }
  Args args;
  if (!ParseArgs(argc, argv, first_flag, *cmd, &args)) {
    std::fprintf(stderr, "run `snowboard_cli --help` for the full flag reference\n");
    return 2;
  }
  if (command == "strategies") {
    return CmdStrategies();
  }
  if (command == "replay") {
    return CmdReplay(args, replay_operand);
  }
  if (command == "corpus") {
    return CmdCorpus(args);
  }
  if (command == "identify") {
    return CmdIdentify(args);
  }
  if (command == "run") {
    return CmdRun(args);
  }
  return CmdCampaign(args);
}

}  // namespace
}  // namespace snowboard

int main(int argc, char** argv) { return snowboard::Main(argc, argv); }
