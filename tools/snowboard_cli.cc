// snowboard_cli — drive the pipeline from the command line, stage by stage or end to end.
//
// The stages mirror the paper's deployment (Figure 2): a fuzzing job builds a corpus; an
// identification job profiles it and emits the PMC database; test workers consume generated
// concurrent tests. Artifacts travel through the serialize.h text formats, so stages can run
// in separate invocations (or be inspected/edited in between).
//
//   snowboard_cli corpus   --out corpus.txt [--size N] [--iters N] [--seed S]
//   snowboard_cli identify --corpus corpus.txt --out pmcs.txt
//   snowboard_cli run      --corpus corpus.txt --pmcs pmcs.txt
//                          [--strategy S-INS-PAIR] [--budget N] [--trials N] [--workers N]
//   snowboard_cli campaign [--strategy S-INS-PAIR] [--budget N] [--workers N] [--seed S]
//                          [--checkpoint-dir DIR] [--resume]
//                          [--inject-faults N] [--fault-seed S]
//   snowboard_cli strategies
//
// Crash safety: with --checkpoint-dir, every stage commits its artifact on completion and
// execution journals per-test outcomes; after a crash (real or injected), rerunning with
// --resume replays the journal and recomputes only what was lost, yielding the identical
// result. --inject-faults N kills the campaign with probability 1/N at each fault point
// (N=1: die at the very first one); an injected death exits with status 42.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "src/snowboard/pipeline.h"
#include "src/snowboard/serialize.h"
#include "src/util/fault.h"
#include "src/util/log.h"

namespace snowboard {
namespace {

struct Args {
  std::map<std::string, std::string> values;

  const char* Get(const std::string& key, const char* fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second.c_str();
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atol(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values.count(key) != 0; }
};

bool ParseArgs(int argc, char** argv, int first, Args* args) {
  for (int i = first; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "bad argument: %s\n", arg);
      return false;
    }
    // A flag followed by another flag (or nothing) is valueless: stored as "1"
    // (--resume; bare --inject-faults means "crash at the first fault point").
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      args->values[arg + 2] = "1";
    } else {
      args->values[arg + 2] = argv[++i];
    }
  }
  return true;
}

const std::map<std::string, Strategy>& StrategyTable() {
  static const std::map<std::string, Strategy>* table = new std::map<std::string, Strategy>{
      {"S-FULL", Strategy::kSFull},
      {"S-CH", Strategy::kSCh},
      {"S-CH-NULL", Strategy::kSChNull},
      {"S-CH-UNALIGNED", Strategy::kSChUnaligned},
      {"S-CH-DOUBLE", Strategy::kSChDouble},
      {"S-INS", Strategy::kSIns},
      {"S-INS-PAIR", Strategy::kSInsPair},
      {"S-MEM", Strategy::kSMem},
      {"RANDOM-S-INS-PAIR", Strategy::kRandomSInsPair},
      {"RANDOM-PAIRING", Strategy::kRandomPairing},
      {"DUPLICATE-PAIRING", Strategy::kDuplicatePairing},
  };
  return *table;
}

int CmdStrategies() {
  for (const auto& [name, strategy] : StrategyTable()) {
    std::printf("%-20s %s\n", name.c_str(),
                StrategyUsesPmcs(strategy) ? "(PMC clustering)" : "(baseline)");
  }
  return 0;
}

int CmdCorpus(const Args& args) {
  const char* out = args.Get("out", nullptr);
  if (out == nullptr) {
    std::fprintf(stderr, "corpus: --out is required\n");
    return 2;
  }
  KernelVm vm;
  CorpusOptions options;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  options.target_size = static_cast<int>(args.GetInt("size", 80));
  options.max_iterations = static_cast<int>(args.GetInt("iters", 300));
  std::vector<Program> corpus = CorpusPrograms(BuildCorpus(vm, options));
  if (!WriteStringToFile(out, SerializeCorpus(corpus))) {
    std::fprintf(stderr, "corpus: cannot write %s\n", out);
    return 1;
  }
  std::printf("wrote %zu sequential tests to %s\n", corpus.size(), out);
  return 0;
}

int CmdIdentify(const Args& args) {
  const char* corpus_path = args.Get("corpus", nullptr);
  const char* out = args.Get("out", nullptr);
  if (corpus_path == nullptr || out == nullptr) {
    std::fprintf(stderr, "identify: --corpus and --out are required\n");
    return 2;
  }
  std::optional<std::string> text = ReadFileToString(corpus_path);
  if (!text.has_value()) {
    std::fprintf(stderr, "identify: cannot read %s\n", corpus_path);
    return 1;
  }
  std::optional<std::vector<Program>> corpus = DeserializeCorpus(*text);
  if (!corpus.has_value()) {
    std::fprintf(stderr, "identify: %s is not a corpus file\n", corpus_path);
    return 1;
  }
  KernelVm vm;
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, *corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  if (!WriteStringToFile(out, SerializePmcs(pmcs))) {
    std::fprintf(stderr, "identify: cannot write %s\n", out);
    return 1;
  }
  uint64_t pairs = 0;
  for (const Pmc& pmc : pmcs) {
    pairs += pmc.total_pairs;
  }
  std::printf("profiled %zu tests; wrote %zu PMCs (%llu test pairs) to %s\n",
              corpus->size(), pmcs.size(), static_cast<unsigned long long>(pairs), out);
  return 0;
}

void PrintResult(const PipelineResult& result) {
  std::printf("tests executed: %zu (%llu trials); with findings: %zu; channel exercised: "
              "%zu\n",
              result.tests_executed, static_cast<unsigned long long>(result.total_trials),
              result.tests_with_bug, result.channel_exercised);
  std::printf("findings:\n%s", result.findings.Summarize().c_str());
}

int CmdRun(const Args& args) {
  const char* corpus_path = args.Get("corpus", nullptr);
  const char* pmcs_path = args.Get("pmcs", nullptr);
  if (corpus_path == nullptr || pmcs_path == nullptr) {
    std::fprintf(stderr, "run: --corpus and --pmcs are required\n");
    return 2;
  }
  std::optional<std::string> corpus_text = ReadFileToString(corpus_path);
  std::optional<std::string> pmcs_text = ReadFileToString(pmcs_path);
  if (!corpus_text.has_value() || !pmcs_text.has_value()) {
    std::fprintf(stderr, "run: cannot read input files\n");
    return 1;
  }
  std::optional<std::vector<Program>> corpus = DeserializeCorpus(*corpus_text);
  std::optional<std::vector<Pmc>> pmcs = DeserializePmcs(*pmcs_text);
  if (!corpus.has_value() || !pmcs.has_value()) {
    std::fprintf(stderr, "run: malformed input files\n");
    return 1;
  }
  auto strategy_it = StrategyTable().find(args.Get("strategy", "S-INS-PAIR"));
  if (strategy_it == StrategyTable().end()) {
    std::fprintf(stderr, "run: unknown strategy (see `snowboard_cli strategies`)\n");
    return 2;
  }

  PreparedCampaign campaign;
  campaign.corpus = *corpus;
  campaign.pmcs = *pmcs;
  PipelineOptions options;
  options.strategy = strategy_it->second;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  options.max_concurrent_tests = static_cast<size_t>(args.GetInt("budget", 300));
  options.explorer.num_trials = static_cast<int>(args.GetInt("trials", 24));
  options.num_workers = static_cast<int>(args.GetInt("workers", 4));

  size_t clusters = 0;
  std::vector<ConcurrentTest> tests = GenerateTestsForStrategy(campaign, options, &clusters);
  std::printf("%s: %zu clusters -> %zu concurrent tests\n", StrategyName(options.strategy),
              clusters, tests.size());
  PmcMatcher matcher(&campaign.pmcs);
  PipelineResult result;
  ExecuteCampaign(tests, StrategyUsesPmcs(options.strategy),
                  StrategyUsesPmcs(options.strategy) ? &matcher : nullptr, options, &result);
  PrintResult(result);
  return 0;
}

int CmdCampaign(const Args& args) {
  auto strategy_it = StrategyTable().find(args.Get("strategy", "S-INS-PAIR"));
  if (strategy_it == StrategyTable().end()) {
    std::fprintf(stderr, "campaign: unknown strategy (see `snowboard_cli strategies`)\n");
    return 2;
  }
  PipelineOptions options;
  options.strategy = strategy_it->second;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  options.corpus.seed = static_cast<uint64_t>(args.GetInt("seed", 1)) * 41 + 1;
  options.corpus.target_size = static_cast<int>(args.GetInt("corpus-size", 80));
  options.corpus.max_iterations = static_cast<int>(args.GetInt("corpus-iters", 300));
  options.max_concurrent_tests = static_cast<size_t>(args.GetInt("budget", 300));
  options.explorer.num_trials = static_cast<int>(args.GetInt("trials", 24));
  options.num_workers = static_cast<int>(args.GetInt("workers", 4));
  options.checkpoint_dir = args.Get("checkpoint-dir", "");
  options.resume = args.Has("resume");
  if (options.resume && options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "campaign: --resume requires --checkpoint-dir\n");
    return 2;
  }

  FaultInjector::Plan plan;
  if (args.Has("inject-faults")) {
    plan.seed = static_cast<uint64_t>(args.GetInt("fault-seed", 1));
    long chance = args.GetInt("inject-faults", 1);
    if (chance <= 1) {
      plan.crash_at = 0;  // Bare flag: die at the very first fault point.
    } else {
      plan.crash_chance = static_cast<uint32_t>(chance);
    }
  }
  FaultInjector fault(plan);
  if (args.Has("inject-faults")) {
    options.fault = &fault;
  }

  PipelineResult result = RunSnowboardPipeline(options);
  if (options.fault != nullptr && options.fault->crashed()) {
    std::fprintf(stderr,
                 "campaign: injected crash at fault point %lld (%s); state is in %s -- "
                 "rerun with --resume to continue\n",
                 static_cast<long long>(options.fault->crash_point()),
                 options.fault->crash_site().c_str(),
                 options.checkpoint_dir.empty() ? "(no checkpoint dir!)"
                                                : options.checkpoint_dir.c_str());
    return 42;
  }
  std::printf("%s: corpus=%zu pmcs=%zu clusters=%zu\n", StrategyName(options.strategy),
              result.corpus_size, result.pmc_count, result.cluster_count);
  if (result.tests_resumed > 0) {
    std::printf("resumed %zu of %zu test outcomes from the checkpoint journal\n",
                result.tests_resumed, result.tests_executed);
  }
  PrintResult(result);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: snowboard_cli <corpus|identify|run|campaign|strategies> "
                 "[--key value]...\n");
    return 2;
  }
  SetLogLevel(LogLevel::kInfo);
  std::string command = argv[1];
  Args args;
  if (!ParseArgs(argc, argv, 2, &args)) {
    return 2;
  }
  if (command == "strategies") {
    return CmdStrategies();
  }
  if (command == "corpus") {
    return CmdCorpus(args);
  }
  if (command == "identify") {
    return CmdIdentify(args);
  }
  if (command == "run") {
    return CmdRun(args);
  }
  if (command == "campaign") {
    return CmdCampaign(args);
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}

}  // namespace
}  // namespace snowboard

int main(int argc, char** argv) { return snowboard::Main(argc, argv); }
